"""Small synchronous client for the scheduling server's JSONL protocol.

One :class:`ServeClient` wraps one connection (unix socket or TCP).
Requests are JSON objects terminated by ``\\n``; responses arrive as
JSON lines tagged with the request ``id``.  ``run`` requests also emit
interleaved status events (``{"event": "status", ...}``), which the
client collects per request.

The client pipelines: :meth:`submit` sends without waiting, and
:meth:`drain` (or :meth:`run`, which submits one job and waits for it)
reads lines until the wanted responses arrive.  Used by the
differential test suite and the Zipf load generator.

**Hardening.**  :meth:`run` retries: dropped connections (anything the
socket layer raises, plus :class:`WireError` frames) trigger a
reconnect-and-resubmit, and server responses tagged ``retryable`` in
the wire taxonomy (``RETRYABLE``, ``SHED``) are resubmitted after an
exponential backoff with deterministic seeded jitter.  Re-submission
is safe because job identity is content-addressed on the server
(:meth:`JobSpec.fingerprint`): a retried request that raced a
completed first attempt is served from the result memo, byte-equal.
Terminal failures surface as :class:`ServeError` carrying the
taxonomy ``code``.  See docs/robustness.md.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, List, Optional

from repro import faults

#: taxonomy codes the retry loop will resubmit on (``DEADLINE`` and
#: ``FATAL`` are terminal: the job itself misbehaved)
RETRYABLE_CODES = ("RETRYABLE", "SHED")


class ServeError(RuntimeError):
    """The server answered ``ok: false``.

    Carries the wire taxonomy: :attr:`code` is one of the server's
    ``ERROR_CODES`` (``RETRYABLE``/``FATAL``/``SHED``/``DEADLINE``),
    :attr:`retryable` is the server's own judgement, and
    :attr:`response` is the full envelope for forensics.
    """

    def __init__(self, message: str, *, code: str = "FATAL",
                 retryable: bool = False,
                 response: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable
        self.response = response or {}


class WireError(ConnectionError):
    """The connection produced bytes that are not protocol frames."""


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ScheduleServer`.

    ``retries``/``backoff``/``backoff_max`` configure :meth:`run`'s
    retry loop (``retries=0`` — the default — keeps the historical
    fail-fast behaviour).  ``retry_seed`` seeds the backoff jitter so
    a campaign run is reproducible.
    """

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 120.0,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        retry_seed: int = 0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need socket_path or port")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self._jitter = random.Random(retry_seed)
        #: re-connections beyond the initial one (0 = nothing went wrong)
        self.reconnects = -1
        #: retried run() attempts (resubmissions, not first tries)
        self.retried = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        #: responses that arrived while waiting for a different id
        self._responses: Dict[Any, Dict[str, Any]] = {}
        #: status events per request id, in arrival order
        self.events: Dict[Any, List[Dict[str, Any]]] = {}
        self._connect()

    # -- connection lifecycle ---------------------------------------------

    def _connect(self) -> None:
        """(Re)establish the socket; drops any buffered responses."""
        self._teardown()
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")
        self.reconnects += 1

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- wire ------------------------------------------------------------

    def send(self, request: Dict[str, Any]) -> Any:
        """Send one request, returning the id it was tagged with."""
        rid = request.get("id")
        if rid is None:
            self._next_id += 1
            rid = self._next_id
            request = dict(request, id=rid)
        payload = (json.dumps(request, sort_keys=True) + "\n").encode("utf-8")
        action = faults.decide("client.send")
        if action is not None:
            if action.kind == "garble":
                # a frame the server must reject without wedging
                payload = b"\xff\xfenot json at all\n"
            elif action.kind == "drop":
                self._teardown()
                raise ConnectionError(
                    f"injected connection drop before send "
                    f"(pass {action.seq})"
                )
        self._file.write(payload)
        self._file.flush()
        return rid

    def _read_line(self) -> Dict[str, Any]:
        action = faults.decide("client.recv")
        if action is not None and action.kind == "drop":
            self._teardown()
            raise ConnectionError(
                f"injected connection drop before recv (pass {action.seq})"
            )
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            return json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WireError(f"malformed frame from server: {exc}") from exc

    def recv(self, rid: Any) -> Dict[str, Any]:
        """Block until the response for ``rid`` arrives."""
        while rid not in self._responses:
            msg = self._read_line()
            if msg.get("event") == "status":
                self.events.setdefault(msg.get("id"), []).append(msg)
            elif msg.get("id") is None and not msg.get("ok", False):
                # the server rejected a frame it could not parse (e.g.
                # a garbled request): *our* request never registered,
                # so waiting for its id would hang forever — surface a
                # wire fault and let the retry loop resubmit
                raise WireError(
                    "server rejected an unparseable frame: "
                    f"{msg.get('error', '?')}"
                )
            else:
                self._responses[msg.get("id")] = msg
        response = self._responses.pop(rid)
        if not response.get("ok", False):
            raise ServeError(
                response.get("error", "unknown server error"),
                code=response.get("code", "FATAL"),
                retryable=bool(response.get("retryable", False)),
                response=response,
            )
        return response

    # -- ops -------------------------------------------------------------

    def submit(
        self,
        kernel: str,
        composition: str,
        *,
        params: Optional[Dict[str, Any]] = None,
        **fields: Any,
    ) -> Any:
        """Pipeline one ``run`` request; returns its id for :meth:`recv`."""
        req: Dict[str, Any] = {
            "op": "run",
            "kernel": kernel,
            "composition": composition,
        }
        if params:
            req["params"] = params
        req.update(fields)
        return self.send(req)

    def _backoff_sleep(self, attempt: int) -> None:
        """Exponential backoff with deterministic jitter in [0.5, 1)."""
        if self.backoff <= 0:
            return
        delay = min(self.backoff * (2 ** attempt), self.backoff_max)
        time.sleep(delay * (0.5 + 0.5 * self._jitter.random()))

    def run(
        self,
        kernel: str,
        composition: str,
        *,
        params: Optional[Dict[str, Any]] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Submit one job and wait for its full response envelope.

        With ``retries > 0`` this is the hardened entry point: torn
        connections reconnect and resubmit immediately; retryable
        server refusals (``SHED``, ``RETRYABLE``) back off and
        resubmit.  The last failure is re-raised once the budget is
        exhausted.
        """
        attempts = self.retries + 1
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                self.retried += 1
            try:
                return self.recv(
                    self.submit(kernel, composition, params=params, **fields)
                )
            except ServeError as exc:
                last = exc
                if not (exc.retryable or exc.code in RETRYABLE_CODES):
                    raise
                if attempt + 1 >= attempts:
                    raise
                self._backoff_sleep(attempt)
            except (WireError, ConnectionError, OSError) as exc:
                last = exc
                if attempt + 1 >= attempts:
                    raise
                self._backoff_sleep(attempt)
                try:
                    self._connect()
                except OSError as reconnect_exc:
                    last = reconnect_exc
                    continue  # server may still be coming back; retry
        raise last  # pragma: no cover - loop always raises or returns

    def drain(self, rids: List[Any]) -> List[Dict[str, Any]]:
        """Responses for ``rids``, in the given order."""
        return [self.recv(rid) for rid in rids]

    def ping(self) -> Dict[str, Any]:
        return self.recv(self.send({"op": "ping"}))

    def stats(self) -> Dict[str, Any]:
        return self.recv(self.send({"op": "stats"}))["stats"]

    def shutdown(self) -> None:
        try:
            self.recv(self.send({"op": "shutdown"}))
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(address: str, *, timeout: float = 120.0, **kwargs: Any) -> ServeClient:
    """Client from an address string: ``host:port`` or a socket path.

    Extra keyword arguments (``retries``, ``backoff``, ``backoff_max``,
    ``retry_seed``) pass straight through to :class:`ServeClient`.
    """
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit():
        return ServeClient(host=host or "127.0.0.1", port=int(port),
                           timeout=timeout, **kwargs)
    return ServeClient(socket_path=address, timeout=timeout, **kwargs)
