"""Reusable job layer: spec, executor and result envelope.

One *job* is one trip through the pipeline — resolve a named workload
to a kernel, schedule it onto a composition (through the shared
content-addressed :class:`~repro.perf.cache.ScheduleCache` when
enabled), generate contexts, simulate one invocation — packaged so the
same code path serves three callers:

* the grid evaluator (:func:`repro.eval.tables.run_grid`) fans
  :func:`execute_job` out over a :class:`~repro.perf.parallel.ParallelEvaluator`;
* the scheduling server (:mod:`repro.serve.server`) submits specs to
  its warm worker pool one request at a time;
* tests and benchmarks call :func:`execute_job` directly.

A :class:`JobSpec` is picklable (pool workers rebuild the kernel from
the workload registry — kernels themselves never cross the process
boundary) and *content-addressed*: :meth:`JobSpec.fingerprint` digests
the canonical spec via :mod:`repro.perf.fingerprint`, which is what the
server's single-flight dedupe keys on.  Equal fingerprints ⇒ equal
jobs ⇒ byte-identical :class:`JobResult` (same ``program_digest``,
cycles, energy, live-outs — see ``tests/serve/test_differential.py``).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.arch.composition import Composition
from repro.arch.operations import energy_units
from repro.context.generator import generate_contexts
from repro.ir.cdfg import Kernel
from repro.obs.ledger import get_ledger, pipeline_record
from repro.obs.timing import timed
from repro.perf.cache import ScheduleCache, shared_cache
from repro.perf.fingerprint import composition_fingerprint, program_digest
from repro.sched.scheduler import schedule_kernel
from repro.sched.strategy import DEFAULT_SCHEDULER_MODE, validate_scheduler_mode
from repro.sim.invocation import invoke_kernel
from repro.sim.machine import DEFAULT_MAX_CYCLES
from repro.verify import verify_enabled

__all__ = [
    "JobSpec",
    "JobResult",
    "ResolvedJob",
    "execute_job",
    "register_workload",
    "resolve_workload",
    "job_payload",
]

#: cache-format tag for programs cached through the jobs layer (bump to
#: invalidate cached programs when their format changes; shared with
#: the historical ``repro.eval.tables.CACHE_FORMAT``)
CACHE_FORMAT = 1

#: grid/server jobs simulate on the AOT-compiled backend by default
DEFAULT_SIM_BACKEND = "compiled"


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work, picklable and content-addressed.

    ``livein``/``arrays`` of ``None`` mean "use the workload's default
    input vector"; ``params`` are workload-builder parameters (the
    ADPCM grid workload takes ``n_samples``/``unroll``).  All mapping
    fields are stored as sorted tuples so equal content compares (and
    pickles, and fingerprints) equal.
    """

    workload: str
    composition: Composition
    label: str = ""
    params: Tuple[Tuple[str, Any], ...] = ()
    livein: Optional[Tuple[Tuple[str, int], ...]] = None
    arrays: Optional[Tuple[Tuple[str, Tuple[int, ...]], ...]] = None
    backend: str = DEFAULT_SIM_BACKEND
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: scheduling strategy selector ("list" | "modulo" | "auto");
    #: result-relevant, so it MUST enter :meth:`fingerprint` and the
    #: schedule-cache key — a cached list-mode program must never
    #: satisfy a modulo-mode request
    scheduler_mode: str = DEFAULT_SCHEDULER_MODE
    #: route scheduling through :func:`repro.perf.cache.shared_cache`
    cached: bool = False
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    #: ledger record kind for this job ("grid.cell" for the grid
    #: evaluator, "serve.job" for server-executed jobs)
    ledger_kind: str = "grid.cell"

    @staticmethod
    def freeze_livein(livein: Optional[Mapping[str, int]]):
        if livein is None:
            return None
        return tuple(sorted(livein.items()))

    @staticmethod
    def freeze_arrays(arrays: Optional[Mapping[str, Any]]):
        if arrays is None:
            return None
        return tuple(
            sorted((name, tuple(data)) for name, data in arrays.items())
        )

    def fingerprint(self) -> str:
        """Content address of this job (the single-flight/dedupe key).

        Covers everything that can change the result: workload name +
        build params, composition content (via
        :func:`~repro.perf.fingerprint.composition_fingerprint`),
        explicit inputs, backend and cycle bound.  Cache routing knobs
        (``cached``/``cache_dir``/…) and the display ``label`` are
        excluded — they change *how* the result is computed, never the
        result itself.
        """
        payload = json.dumps(
            [
                self.workload,
                sorted([k, repr(v)] for k, v in self.params),
                composition_fingerprint(self.composition),
                self.livein,
                self.arrays,
                self.backend,
                self.max_cycles,
                self.scheduler_mode,
            ],
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class JobResult:
    """Everything a caller may want back from one executed job.

    The determinism-relevant signature is (``program_digest``,
    ``run_cycles``, ``energy_units``, ``results``, ``heap``): equal
    specs must produce equal signatures whether the job ran serially,
    in a pool worker, or behind the server (the differential suite's
    oracle).  ``cache_hits_delta``/``cache_misses_delta`` let a parent
    process fold pool workers' schedule-cache statistics.
    """

    label: str
    workload: str
    composition: str
    program_digest: str
    used_contexts: int
    max_rf_entries: int
    schedule_seconds: float
    cache_hit: Optional[bool]
    sim_seconds: float
    results: Dict[str, int]
    run_cycles: int
    total_cycles: int
    #: per-PE dynamic operation counts (the RunResult field verbatim)
    ops_executed: List[int]
    branches_taken: int
    energy: float
    #: ``energy`` in exact integer micro-units (bit-equal across
    #: backends and processes, unlike the derived float)
    energy_units: int
    heap: Dict[str, List[int]] = field(default_factory=dict)
    correct: Optional[bool] = None
    cache_hits_delta: int = 0
    cache_misses_delta: int = 0


@dataclass
class ResolvedJob:
    """A workload materialised into concrete pipeline inputs."""

    kernel: Kernel
    livein: Dict[str, int]
    arrays: Dict[str, List[int]]
    #: optional correctness oracle: (array name, expected final contents)
    expect: Optional[Tuple[str, List[int]]] = None


#: extension point: name -> builder(params) -> ResolvedJob (tests and
#: embedders register synthetic workloads here; checked first)
_EXTRA_WORKLOADS: Dict[str, Callable[[Dict[str, Any]], ResolvedJob]] = {}


def register_workload(
    name: str, builder: Callable[[Dict[str, Any]], ResolvedJob]
) -> None:
    """Register (or replace) a custom workload builder."""
    _EXTRA_WORKLOADS[name] = builder


def _adpcm_job(params: Dict[str, Any]) -> ResolvedJob:
    # lazy import: repro.eval.tables consumes this module
    from repro.eval.tables import adpcm_workload
    from repro.kernels.adpcm import N_SAMPLES

    n_samples = int(params.get("n_samples", N_SAMPLES))
    unroll = int(params.get("unroll", 2))
    kernel, arrays, expect = adpcm_workload(n_samples, unroll=unroll)
    return ResolvedJob(
        kernel=kernel,
        livein={"n": n_samples, "gain": int(params.get("gain", 4096))},
        arrays=arrays,
        expect=("outp", expect),
    )


def resolve_workload(spec: JobSpec) -> ResolvedJob:
    """Materialise ``spec`` into kernel + concrete invocation inputs.

    Resolution order: custom registrations, the parameterised ADPCM
    evaluation workload, then the :mod:`repro.verify.workloads`
    registry (whose first input vector supplies default inputs).
    Explicit ``spec.livein``/``spec.arrays`` override the defaults —
    overriding drops the built-in correctness oracle, since the
    expected output was computed for the default inputs.
    """
    params = dict(spec.params)
    if spec.workload in _EXTRA_WORKLOADS:
        job = _EXTRA_WORKLOADS[spec.workload](params)
    elif spec.workload == "adpcm":
        job = _adpcm_job(params)
    else:
        from repro.verify.workloads import get_workload

        wl = get_workload(spec.workload)
        vec = wl.vectors[0]
        job = ResolvedJob(
            kernel=wl.build(),
            livein=dict(vec.livein),
            arrays=vec.fresh_arrays(),
        )
    if spec.livein is not None:
        job.livein = dict(spec.livein)
        job.expect = None
    if spec.arrays is not None:
        arrays = dict(job.arrays)
        arrays.update(
            {name: list(data) for name, data in spec.arrays}
        )
        job.arrays = arrays
        job.expect = None
    return job


def execute_job(
    spec: JobSpec, *, cache: Optional[ScheduleCache] = None
) -> JobResult:
    """Run one job end to end; module-level so pools can pickle it.

    ``cache`` injects a pre-resolved :class:`ScheduleCache` (the
    direct-call path); otherwise the spec's ``cached``/``cache_dir``
    resolve one via :func:`shared_cache` — which is how forked pool
    workers share the parent's warm in-memory layer and the on-disk
    artifact store.
    """
    job = resolve_workload(spec)
    kernel, comp = job.kernel, spec.composition
    validate_scheduler_mode(spec.scheduler_mode)
    if cache is None and (spec.cached or spec.cache_dir is not None):
        cache = shared_cache(
            spec.cache_dir, max_bytes=spec.cache_max_bytes
        )
    before = (cache.hits, cache.misses) if cache else (0, 0)
    cache_hit: Optional[bool] = None
    label = spec.label or f"{spec.workload} on {comp.name}"
    with timed("sched.walltime", label=label) as timer:
        if cache is None:
            schedule = schedule_kernel(
                kernel, comp, scheduler_mode=spec.scheduler_mode
            )
            program = generate_contexts(schedule, comp, kernel)
        else:
            # content-addressed: a hit skips scheduling + context
            # generation entirely (byte-identical program, see
            # tests/perf/test_determinism.py)
            def _compute():
                schedule = schedule_kernel(
                    kernel, comp, scheduler_mode=spec.scheduler_mode
                )
                return generate_contexts(schedule, comp, kernel)

            program, cache_hit = cache.get_or_compute(
                kernel,
                comp,
                _compute,
                fmt=CACHE_FORMAT,
                scheduler_mode=spec.scheduler_mode,
            )
    after = (cache.hits, cache.misses) if cache else (0, 0)
    sim_t0 = time.perf_counter()
    result = invoke_kernel(
        kernel,
        comp,
        dict(job.livein),
        {name: list(data) for name, data in job.arrays.items()},
        program=program,
        backend=spec.backend,
        max_cycles=spec.max_cycles,
    )
    sim_seconds = time.perf_counter() - sim_t0
    heap = {
        ref.name: list(result.heap.array(ref.handle))
        for ref in kernel.arrays
    }
    correct: Optional[bool] = None
    if job.expect is not None:
        name, expected = job.expect
        correct = heap[name] == list(expected)
    ledger = get_ledger()
    if ledger.enabled:
        ledger.record(
            spec.ledger_kind,
            label=label,
            **pipeline_record(
                kernel,
                comp,
                program,
                schedule_seconds=timer.seconds,
                cache_hit=cache_hit,
                backend=spec.backend,
                sim_seconds=sim_seconds,
                cycles=result.run_cycles,
                correct=correct,
                energy=result.run.energy,
                verifier=(
                    "ok"
                    if cache_hit is not True and verify_enabled()
                    else None
                ),
            ),
        )
    return JobResult(
        label=label,
        workload=spec.workload,
        composition=comp.name,
        program_digest=program_digest(program),
        used_contexts=program.used_contexts,
        max_rf_entries=program.max_rf_entries,
        schedule_seconds=timer.seconds,
        cache_hit=cache_hit,
        sim_seconds=sim_seconds,
        results=dict(result.results),
        run_cycles=result.run_cycles,
        total_cycles=result.total_cycles,
        ops_executed=list(result.run.ops_executed),
        branches_taken=result.run.branches_taken,
        energy=result.run.energy,
        energy_units=energy_units(result.run.energy),
        heap=heap,
        correct=correct,
        cache_hits_delta=after[0] - before[0],
        cache_misses_delta=after[1] - before[1],
    )


def job_payload(result: JobResult) -> Dict[str, Any]:
    """A JSON-safe response payload from one :class:`JobResult`."""
    return {
        "label": result.label,
        "workload": result.workload,
        "composition": result.composition,
        "program_digest": result.program_digest,
        "used_contexts": result.used_contexts,
        "max_rf_entries": result.max_rf_entries,
        "schedule_seconds": round(result.schedule_seconds, 6),
        "cache_hit": result.cache_hit,
        "sim_seconds": round(result.sim_seconds, 6),
        "results": dict(result.results),
        "run_cycles": result.run_cycles,
        "total_cycles": result.total_cycles,
        "ops_executed": result.ops_executed,
        "branches_taken": result.branches_taken,
        "energy": result.energy,
        "energy_units": result.energy_units,
        "heap": {name: list(data) for name, data in result.heap.items()},
        "correct": result.correct,
    }
