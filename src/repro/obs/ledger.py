"""Structured run ledger: one JSONL record per pipeline invocation.

Every trip through the pipeline (schedule -> contexts -> verify ->
simulate) appends one schema-versioned record to the installed
:class:`RunLedger`: kernel/composition content fingerprints (from
:mod:`repro.perf.fingerprint`), the emitted program digest, scheduler
wall-time, schedule-cache hit/miss, verifier outcome, simulator backend
and throughput.  The ledger is the durable trail the benchmark
snapshots and the regression observatory build on: ``BENCH_*.json``
answers *how fast*, the ledger answers *what exactly ran and what came
out*.

Like the tracer and the metrics registry, the process-wide default is
an inert no-op (:data:`NULL_LEDGER`); install a real one with
:func:`set_ledger` or the ``--ledger FILE`` flag on ``repro.eval`` /
``repro.verify`` / ``repro.obs``.  Records are buffered in memory and
written on :meth:`RunLedger.write` — pool workers run with their own
ledger whose records the parent folds back in submission order, so a
``--jobs N`` run produces the same ledger as the serial run (see
:mod:`repro.perf.parallel`).

Schema (``LEDGER_SCHEMA = 1``) — common envelope per record::

    {"schema": 1, "seq": 3, "kind": "pipeline.run", "ts": 1723...,
     ...kind-specific fields...}

See docs/observability.md ("Run ledger") for the per-kind fields.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, IO, Iterator, List, Optional, Union

__all__ = [
    "LEDGER_SCHEMA",
    "NullLedger",
    "NULL_LEDGER",
    "RunLedger",
    "get_ledger",
    "set_ledger",
    "pipeline_record",
    "read_ledger",
]

#: bump when the record envelope or the pipeline.run fields change shape
LEDGER_SCHEMA = 1


class NullLedger:
    """Ledger that records nothing; the process-wide default."""

    enabled = False

    def record(self, kind: str, **fields: Any) -> None:
        return None


NULL_LEDGER = NullLedger()


class RunLedger:
    """In-memory, schema-versioned record buffer with JSONL export."""

    enabled = True

    def __init__(self, path: Optional[str] = None) -> None:
        #: default destination for :meth:`write` (optional)
        self.path = path
        self.records: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records)

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; envelope fields win over ``fields``."""
        rec = dict(fields)
        rec.update(
            schema=LEDGER_SCHEMA,
            seq=len(self.records),
            kind=kind,
            ts=round(time.time(), 3),
        )
        self.records.append(rec)
        return rec

    def extend(self, records: List[Dict[str, Any]]) -> None:
        """Fold records captured by another process's ledger.

        ``seq`` is re-assigned so the merged ledger stays totally
        ordered; everything else is kept verbatim.
        """
        for rec in records:
            merged = dict(rec)
            merged["seq"] = len(self.records)
            self.records.append(merged)

    def write(self, dest: Optional[Union[str, IO[str]]] = None) -> None:
        """Write all records as JSONL to ``dest`` (default: ``path``)."""
        target = dest if dest is not None else self.path
        if target is None:
            raise ValueError("RunLedger has no path and no dest was given")
        if isinstance(target, str):
            with open(target, "w") as fh:
                self._render(fh)
        else:
            self._render(target)

    def _render(self, fh: IO[str]) -> None:
        for rec in self.records:
            fh.write(json.dumps(rec, sort_keys=True, default=str))
            fh.write("\n")


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL ledger file back into a list of records."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def pipeline_record(
    kernel,
    comp,
    program,
    *,
    schedule_seconds: Optional[float] = None,
    cache_hit: Optional[bool] = None,
    backend: Optional[str] = None,
    sim_seconds: Optional[float] = None,
    cycles: Optional[int] = None,
    correct: Optional[bool] = None,
    energy: Optional[float] = None,
    verifier: Optional[str] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """The standard ``pipeline.run`` field set for one invocation.

    Computes the content fingerprints / program digest here so call
    sites stay one line; ``cache_hit=None`` means "no cache in play",
    ``verifier`` is ``"ok"`` / ``"disabled"`` / a finding count.
    """
    from repro.perf.fingerprint import (
        composition_fingerprint,
        kernel_fingerprint,
        program_digest,
    )

    fields: Dict[str, Any] = {
        "kernel": getattr(kernel, "name", str(kernel)),
        "kernel_fp": kernel_fingerprint(kernel),
        "composition": getattr(comp, "name", str(comp)),
        "composition_fp": composition_fingerprint(comp),
        "program_digest": program_digest(program),
        "contexts": getattr(program, "n_cycles", None),
        "schedule_seconds": _round(schedule_seconds),
        "cache_hit": cache_hit,
        "backend": backend,
        "sim_seconds": _round(sim_seconds),
        "cycles": cycles,
        "cycles_per_sec": (
            round(cycles / sim_seconds)
            if cycles is not None and sim_seconds
            else None
        ),
        "correct": correct,
        "energy": energy,
        "verifier": verifier,
    }
    fields.update(extra)
    return fields


def _round(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds, 6)


_ledger: Union[RunLedger, NullLedger] = NULL_LEDGER


def get_ledger() -> Union[RunLedger, NullLedger]:
    """The process-wide ledger (default: :data:`NULL_LEDGER`)."""
    return _ledger


def set_ledger(ledger: Optional[Union[RunLedger, NullLedger]]):
    """Install ``ledger`` (``None`` = disable); returns the previous."""
    global _ledger
    previous = _ledger
    _ledger = ledger if ledger is not None else NULL_LEDGER
    return previous
