"""Observability harness: ``python -m repro.obs [command] [options]``.

Default command (``run``, implied): run one kernel/composition pair
through the full pipeline (schedule -> contexts -> simulate) with
tracing, metrics and the run ledger enabled, print a human-readable
report of the scheduler/simulator internals, and optionally write the
trace (Chrome trace-event JSON and/or JSONL), the metrics snapshot and
the ledger to files::

    python -m repro.obs gcd --composition compositions/mesh4.json \\
        --trace out.trace.json --metrics out.metrics.json

Open the trace file in ``chrome://tracing`` or https://ui.perfetto.dev.

Benchmark-snapshot commands (the perf-regression observatory)::

    python -m repro.obs snapshot --tag seed -o BENCH_seed.json b1.json b2.json
    python -m repro.obs diff BENCH_seed.json BENCH_now.json
    python -m repro.obs check --baseline BENCH_seed.json BENCH_now.json \\
        --tolerance 10%

``snapshot`` rolls pytest-benchmark ``--benchmark-json`` outputs into a
canonical ``BENCH_<tag>.json`` with machine provenance; ``diff``
classifies every per-metric delta (improved/regressed/neutral);
``check`` exits non-zero when a gated metric regressed beyond the
tolerance.  See docs/observability.md for the event taxonomy, metric
names, and the snapshot/ledger schemas.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Callable, Dict, List, Tuple

from repro.arch.composition import Composition
from repro.arch.description import load_composition
from repro.arch.library import (
    IRREGULAR_NAMES,
    MESH_SIZES,
    irregular_composition,
    mesh_composition,
)
from repro.obs import observe, timed
from repro.obs.ledger import RunLedger, set_ledger
from repro.sim.invocation import invoke_kernel

#: kernel name -> () -> (kernel, livein scalars, array contents)
_KernelSpec = Callable[[], Tuple[object, Dict[str, int], Dict[str, List[int]]]]


def _spec_gcd():
    from repro.kernels import gcd

    return gcd.build_kernel(), {"a": 1071, "b": 462}, {}


def _spec_dotp():
    from repro.kernels import dotp

    xs, ys = dotp.sample_inputs(8)
    return dotp.build_kernel(), {"n": 8}, {"xs": xs, "ys": ys}


def _spec_sort():
    from repro.kernels import sort

    return sort.build_kernel(), {"n": 8}, {"data": [5, 3, 8, 1, 9, 2, 7, 4]}


def _spec_crc32():
    from repro.kernels import crc32

    return crc32.build_kernel(), {"n": 4}, {"data": [0x12, 0x34, 0x56, 0x78]}


def _spec_histogram():
    from repro.kernels import histogram

    return (
        histogram.build_kernel(),
        {"n": 8, "nbins": 4},
        {"data": [0, 1, 2, 3, 3, 2, 1, 0], "bins": [0, 0, 0, 0]},
    )


def _spec_matmul():
    from repro.kernels import matmul

    return (
        matmul.build_kernel(),
        {"n": 3},
        {"a": list(range(1, 10)), "b": list(range(9, 0, -1)), "c": [0] * 9},
    )


def _spec_fir():
    from repro.kernels import fir

    return (
        fir.build_kernel(),
        {"n": 8, "taps": 3},
        {
            "xs": [3, 1, 4, 1, 5, 9, 2, 6],
            "coeffs": [1, 2, 1],
            "ys": [0] * 8,
        },
    )


def _spec_adpcm():
    from repro.eval.tables import adpcm_workload

    kernel, arrays, _expect = adpcm_workload(16)
    return kernel, {"n": 16, "gain": 4096}, arrays


KERNELS: Dict[str, _KernelSpec] = {
    "gcd": _spec_gcd,
    "dotp": _spec_dotp,
    "sort": _spec_sort,
    "crc32": _spec_crc32,
    "histogram": _spec_histogram,
    "matmul": _spec_matmul,
    "fir": _spec_fir,
    "adpcm": _spec_adpcm,
}


def resolve_composition(spec: str) -> Composition:
    """A composition from a JSON file path or a library name.

    Accepts a path to a ``compositions/*.json`` file, ``mesh<N>`` for
    the Fig. 13 meshes, or ``irregular<X>`` / ``<X>`` for the Fig. 14
    irregular compositions A-F.
    """
    if os.path.isfile(spec):
        return load_composition(spec)
    m = re.fullmatch(r"mesh(\d+)", spec)
    if m and int(m.group(1)) in MESH_SIZES:
        return mesh_composition(int(m.group(1)))
    m = re.fullmatch(r"(?:irregular)?([A-Fa-f])", spec)
    if m and m.group(1).upper() in IRREGULAR_NAMES:
        return irregular_composition(m.group(1).upper())
    raise SystemExit(
        f"unknown composition {spec!r}: expected a JSON file path, "
        f"mesh{{{','.join(str(n) for n in MESH_SIZES)}}}, or "
        f"irregular{{A..F}}"
    )


def _top_counters(snapshot: Dict, prefix: str, limit: int = 5) -> List[str]:
    rows = sorted(
        (
            (v, k)
            for k, v in snapshot["counters"].items()
            if k.startswith(prefix)
        ),
        reverse=True,
    )
    return [f"{k} = {v:g}" for v, k in rows[:limit]]


def _snapshot_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs snapshot",
        description="Roll pytest-benchmark JSON outputs into a "
        "canonical BENCH_<tag>.json snapshot with provenance.",
    )
    parser.add_argument(
        "inputs",
        nargs="+",
        metavar="BENCHMARK_JSON",
        help="pytest-benchmark --benchmark-json output file(s)",
    )
    parser.add_argument("--tag", required=True, help="snapshot tag, e.g. seed")
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="destination (default: BENCH_<tag>.json)",
    )
    parser.add_argument("--note", help="free-form annotation stored in the file")
    args = parser.parse_args(argv)

    from repro.obs.bench import build_snapshot, write_snapshot

    pairs = []
    for path in args.inputs:
        with open(path) as fh:
            pairs.append((path, json.load(fh)))
    snapshot = build_snapshot(args.tag, pairs, note=args.note)
    out = args.output or f"BENCH_{args.tag}.json"
    write_snapshot(out, snapshot)
    print(
        f"snapshot {args.tag!r} written to {out}: "
        f"{len(snapshot['metrics'])} metrics from "
        f"{len(args.inputs)} input file(s)"
    )
    return 0


def _diff_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Classify per-metric deltas between two snapshots "
        "(improved / regressed / neutral).",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json (or raw benchmark JSON)")
    parser.add_argument(
        "--tolerance",
        default="10%",
        help="neutral band, e.g. 10%% or 0.1 (default: 10%%)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list neutral metrics too"
    )
    args = parser.parse_args(argv)

    from repro.obs.bench import load_snapshot
    from repro.obs.regress import compare, parse_tolerance, render_deltas

    deltas = compare(
        load_snapshot(args.baseline),
        load_snapshot(args.current),
        tolerance=parse_tolerance(args.tolerance),
    )
    print(render_deltas(deltas, verbose=args.verbose))
    return 0


def _check_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs check",
        description="Gate a current snapshot against a baseline: exit "
        "non-zero when a gated metric regressed beyond the tolerance.",
    )
    parser.add_argument(
        "current",
        nargs="+",
        metavar="CURRENT",
        help="current snapshot, or raw pytest-benchmark JSON file(s) "
        "(rolled into an ephemeral snapshot)",
    )
    parser.add_argument(
        "--baseline", required=True, metavar="FILE", help="baseline BENCH_*.json"
    )
    parser.add_argument(
        "--tolerance",
        default="10%",
        help="neutral band, e.g. 10%% or 0.1 (default: 10%%)",
    )
    parser.add_argument(
        "--include-times",
        action="store_true",
        help="also gate wall-clock metrics (same-machine comparisons)",
    )
    parser.add_argument(
        "--include-ratios",
        action="store_true",
        help="also gate speedup/hit-rate ratio metrics",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list neutral metrics too"
    )
    args = parser.parse_args(argv)

    from repro.obs.bench import build_snapshot, is_snapshot, load_snapshot
    from repro.obs.regress import compare, gate, parse_tolerance, render_deltas

    if len(args.current) == 1:
        current = load_snapshot(args.current[0])
    else:
        pairs = []
        for path in args.current:
            with open(path) as fh:
                data = json.load(fh)
            if is_snapshot(data):
                parser.error(
                    f"{path}: pass a single snapshot, or only raw "
                    f"benchmark JSON files"
                )
            pairs.append((path, data))
        current = build_snapshot("current", pairs)

    baseline = load_snapshot(args.baseline)
    deltas = compare(
        baseline, current, tolerance=parse_tolerance(args.tolerance)
    )
    print(
        f"baseline {baseline.get('tag')!r} "
        f"({baseline.get('provenance', {}).get('hostname', '?')}) vs "
        f"current {current.get('tag')!r}:"
    )
    print(render_deltas(deltas, verbose=args.verbose))
    failures = gate(
        deltas,
        include_times=args.include_times,
        include_ratios=args.include_ratios,
    )
    if failures:
        print(f"\nFAIL: {len(failures)} gated regression(s):")
        for d in failures:
            print(f"  {d.render()}")
        return 1
    regressed = sum(1 for d in deltas if d.classification == "regressed")
    print(
        f"\nok: no gated regressions"
        + (f" ({regressed} non-gated regression(s) reported above)" if regressed else "")
    )
    return 0


_SUBCOMMANDS = {
    "snapshot": _snapshot_main,
    "diff": _diff_main,
    "check": _check_main,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return _run_main(argv)


def _run_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        default="gcd",
        choices=sorted(KERNELS),
        help="workload kernel (default: gcd)",
    )
    parser.add_argument(
        "-c",
        "--composition",
        default="mesh4",
        help="composition: JSON file path, meshN, or irregularA..F "
        "(default: mesh4)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="write Chrome trace-event JSON"
    )
    parser.add_argument(
        "--jsonl", metavar="FILE", help="write the raw trace records as JSONL"
    )
    parser.add_argument(
        "--metrics", metavar="FILE", help="write the metrics snapshot as JSON"
    )
    parser.add_argument(
        "--ledger", metavar="FILE", help="write the run ledger as JSONL"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the report"
    )
    args = parser.parse_args(argv)

    comp = resolve_composition(args.composition)
    kernel, livein, arrays = KERNELS[args.kernel]()

    ledger = RunLedger(args.ledger)
    previous_ledger = set_ledger(ledger)
    try:
        with observe() as session:
            with timed("obs.pipeline", kernel=args.kernel):
                result = invoke_kernel(kernel, comp, livein, arrays)
    finally:
        set_ledger(previous_ledger)

    snapshot = session.metrics.snapshot()
    if not args.quiet:
        print(f"=== {args.kernel} on {comp.name} ===")
        print(f"results: {result.results}")
        print(
            f"run: {result.run_cycles} cycles "
            f"({result.total_cycles} with transfers), "
            f"{sum(result.run.ops_executed)} dynamic ops, "
            f"{result.run.branches_taken} taken branches"
        )
        placed = snapshot["counters"].get("sched.ops.placed", 0)
        attempts = snapshot["counters"].get("sched.placement.attempts", 0)
        copies = snapshot["counters"].get("route.copies.inserted", 0)
        print(
            f"scheduler: {placed:g} ops placed in {attempts:g} placement "
            f"attempts, {copies:g} routing copies inserted"
        )
        rejects = _top_counters(snapshot, "sched.placement.rejected")
        if rejects:
            print("top rejection reasons:")
            for row in rejects:
                print(f"  {row}")
        print()
        print(session.metrics.render_report())

    if args.trace:
        session.tracer.to_chrome(args.trace)
        print(
            f"trace written to {args.trace} "
            f"({len(session.tracer.records)} records)"
        )
    if args.jsonl:
        session.tracer.to_jsonl(args.jsonl)
        print(f"JSONL trace written to {args.jsonl}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(snapshot, fh, indent=2)
        print(f"metrics written to {args.metrics}")
    if args.ledger:
        ledger.write()
        print(f"run ledger written to {args.ledger} ({len(ledger)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
