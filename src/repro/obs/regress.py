"""Perf-regression observatory: diff and gate benchmark snapshots.

:func:`compare` lines two :mod:`repro.obs.bench` snapshots up metric by
metric and classifies every delta:

* ``improved`` / ``regressed`` — moved beyond the tolerance in the
  metric's good/bad direction,
* ``neutral`` — within tolerance (or the metric has no direction),
* ``added`` / ``removed`` — present in only one snapshot (a CI smoke
  subset legitimately produces fewer metrics than the full baseline).

:func:`gate` turns the comparison into an exit code: a regression on a
gated metric kind fails the check.  Deterministic ``count`` metrics are
always gated; machine-dependent ``time`` metrics and machine-relative
``ratio`` metrics only when explicitly included, so the same baseline
works across laptops and CI runners.

CLI: ``python -m repro.obs diff A B`` and ``python -m repro.obs check
--baseline BENCH_seed.json --tolerance 10%`` (see docs/observability.md,
"Regression gating").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "MetricDelta",
    "compare",
    "gate",
    "parse_tolerance",
    "render_deltas",
]

#: metric kinds gated by default (see repro.obs.bench for the taxonomy)
DEFAULT_GATED_KINDS = ("count",)


@dataclass
class MetricDelta:
    """One metric's movement between a baseline and a current snapshot."""

    name: str
    kind: str
    unit: str
    direction: Optional[str]
    baseline: Optional[float]
    current: Optional[float]
    #: relative change (cur - base) / base; None when undefined
    rel_change: Optional[float]
    #: improved | regressed | neutral | added | removed
    classification: str

    def render(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return "-" if v is None else f"{v:g}"

        pct = (
            ""
            if self.rel_change is None
            else f" ({self.rel_change:+.1%})"
        )
        return (
            f"{self.classification:<9} {self.kind:<6} {self.name}: "
            f"{fmt(self.baseline)} -> {fmt(self.current)}{pct}"
        )


def parse_tolerance(text: str) -> float:
    """``"10%"`` -> 0.10, ``"0.1"`` -> 0.1."""
    text = text.strip()
    if text.endswith("%"):
        return float(text[:-1]) / 100.0
    return float(text)


def _classify(
    direction: Optional[str],
    baseline: float,
    current: float,
    tolerance: float,
) -> str:
    if direction not in ("lower", "higher"):
        return "neutral"
    if baseline == 0:
        if current == 0:
            return "neutral"
        # something from nothing: treat growth as movement in ``current``'s
        # favour or against it depending on direction
        return "regressed" if direction == "lower" else "improved"
    rel = (current - baseline) / abs(baseline)
    if abs(rel) <= tolerance:
        return "neutral"
    worse = rel > 0 if direction == "lower" else rel < 0
    return "regressed" if worse else "improved"


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    *,
    tolerance: float = 0.10,
) -> List[MetricDelta]:
    """All metric deltas between two snapshots, sorted by name."""
    base_metrics: Dict[str, Dict] = baseline.get("metrics", {})
    cur_metrics: Dict[str, Dict] = current.get("metrics", {})
    deltas: List[MetricDelta] = []
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        b = base_metrics.get(name)
        c = cur_metrics.get(name)
        meta = c if c is not None else b
        assert meta is not None
        kind = meta.get("kind", "info")
        unit = meta.get("unit", "")
        direction = meta.get("direction")
        if b is None:
            deltas.append(
                MetricDelta(name, kind, unit, direction, None, c["value"], None, "added")
            )
            continue
        if c is None:
            deltas.append(
                MetricDelta(name, kind, unit, direction, b["value"], None, None, "removed")
            )
            continue
        bv, cv = b["value"], c["value"]
        rel = (cv - bv) / abs(bv) if bv else None
        deltas.append(
            MetricDelta(
                name,
                kind,
                unit,
                direction,
                bv,
                cv,
                rel,
                _classify(direction, bv, cv, tolerance),
            )
        )
    return deltas


def gate(
    deltas: List[MetricDelta],
    *,
    include_times: bool = False,
    include_ratios: bool = False,
) -> List[MetricDelta]:
    """The regressions that should fail the check.

    ``count`` regressions always gate; ``time`` / ``ratio`` ones only
    when opted in (cross-machine comparisons make raw wall-clock and
    core-count-relative ratios unreliable).
    """
    kinds = set(DEFAULT_GATED_KINDS)
    if include_times:
        kinds.add("time")
    if include_ratios:
        kinds.add("ratio")
    return [
        d
        for d in deltas
        if d.classification == "regressed" and d.kind in kinds
    ]


def render_deltas(
    deltas: List[MetricDelta], *, verbose: bool = False
) -> str:
    """Human-readable comparison: movements first, neutrals summarised."""
    lines: List[str] = []
    moved = [d for d in deltas if d.classification in ("improved", "regressed")]
    edges = [d for d in deltas if d.classification in ("added", "removed")]
    neutral = [d for d in deltas if d.classification == "neutral"]
    for d in moved:
        lines.append(d.render())
    if verbose:
        for d in neutral + edges:
            lines.append(d.render())
    else:
        if edges:
            lines.append(
                f"(+{sum(1 for d in edges if d.classification == 'added')} added, "
                f"-{sum(1 for d in edges if d.classification == 'removed')} removed "
                f"metric(s) — not compared)"
            )
        lines.append(f"({len(neutral)} metric(s) neutral)")
    return "\n".join(lines) if lines else "(no metrics to compare)"
