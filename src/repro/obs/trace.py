"""Structured tracing: nested spans and instant events.

A :class:`Tracer` collects records in memory while the pipeline runs and
writes them out afterwards, either as JSONL (one record per line, easy
to grep/load) or in the Chrome trace-event format that
``chrome://tracing`` and https://ui.perfetto.dev consume directly.

The default tracer is :data:`NULL_TRACER`, a shared no-op object whose
``span``/``event`` calls cost one attribute lookup and one call — the
instrumented hot paths (scheduler placement loop, simulator cycle loop)
additionally guard on ``tracer.enabled`` before building attribute
dicts, so tracing costs ~nothing unless switched on via
:func:`set_tracer` or :func:`repro.obs.observe`.

Everything is process-local and single-threaded, matching the rest of
the pipeline; spans therefore nest as a simple stack.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, List, Optional, Union

__all__ = [
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "get_tracer",
    "set_tracer",
]


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; the process-wide default."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None


NULL_TRACER = NullTracer()


class _Span:
    """Context manager filling in the duration of one span record."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        self._record["dur"] = tracer._now_us() - self._record["ts"]
        tracer._depth -= 1
        return False

    def set(self, **attrs: Any) -> None:
        """Attach further attributes while the span is open."""
        self._record["args"].update(attrs)


class Tracer:
    """Recording tracer: spans (with durations) and instant events.

    ``max_records`` bounds memory on long runs; once full, further
    records are dropped and counted in :attr:`dropped` (spans keep
    functioning — only their record is not retained).
    """

    enabled = True

    def __init__(
        self,
        *,
        max_records: int = 1_000_000,
        clock: Callable[[], int] = time.perf_counter_ns,
        epoch_ns: Optional[int] = None,
    ) -> None:
        self.records: List[Dict[str, Any]] = []
        self.dropped = 0
        self.max_records = max_records
        self._clock = clock
        # ``epoch_ns`` aligns this tracer's timestamps with another
        # tracer's timeline: pool workers pass the parent's epoch so the
        # merged trace shares one time axis (perf_counter_ns is the
        # system-wide monotonic clock, comparable across processes)
        self._t0 = epoch_ns if epoch_ns is not None else clock()
        self._depth = 0
        #: pid -> display label for foreign (merged-in) record lanes
        self._pid_labels: Dict[int, str] = {}

    # -- recording ------------------------------------------------------

    def _now_us(self) -> float:
        return (self._clock() - self._t0) / 1000.0

    def _append(self, record: Dict[str, Any]) -> None:
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a nested span; use as ``with tracer.span("sched.kernel"):``."""
        record = {
            "type": "span",
            "name": name,
            "ts": self._now_us(),
            "dur": None,
            "depth": self._depth,
            "args": attrs,
        }
        self._depth += 1
        self._append(record)
        return _Span(self, record)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event at the current time."""
        self._append(
            {
                "type": "event",
                "name": name,
                "ts": self._now_us(),
                "depth": self._depth,
                "args": attrs,
            }
        )

    @property
    def epoch_ns(self) -> int:
        """The ns instant this tracer's ``ts`` values are relative to."""
        return self._t0

    def add_foreign_records(
        self,
        records: List[Dict[str, Any]],
        *,
        pid: int,
        label: Optional[str] = None,
    ) -> None:
        """Merge records captured by another process's tracer.

        The foreign tracer must have been constructed with this
        tracer's :attr:`epoch_ns` so the timelines align; its records
        land on a separate ``pid`` lane in the Chrome export.
        """
        if label is not None:
            self._pid_labels[pid] = label
        for record in records:
            self._append({**record, "pid": pid})

    # -- export ---------------------------------------------------------

    def to_jsonl(self, dest: Union[str, IO[str]]) -> None:
        """Write one JSON record per line."""
        self._write(dest, self._render_jsonl)

    def _render_jsonl(self, fh: IO[str]) -> None:
        for record in self.records:
            fh.write(json.dumps(record, default=str))
            fh.write("\n")

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Records in Chrome trace-event form (``ph: X`` / ``ph: i``).

        Records merged in via :meth:`add_foreign_records` keep their
        worker pid, so a parallel run renders as one lane per process;
        metadata events name each lane.
        """
        events: List[Dict[str, Any]] = []
        labels = dict(self._pid_labels)
        if labels:
            labels.setdefault(0, "main")
        for pid, label in sorted(labels.items()):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        for record in self.records:
            common = {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ts": record["ts"],
                "pid": record.get("pid", 0),
                "tid": 0,
                "args": record["args"],
            }
            if record["type"] == "span":
                dur = record["dur"]
                events.append(
                    {**common, "ph": "X", "dur": 0.0 if dur is None else dur}
                )
            else:
                events.append({**common, "ph": "i", "s": "t"})
        return events

    def to_chrome(self, dest: Union[str, IO[str]]) -> None:
        """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_records": self.dropped},
        }
        self._write(
            dest, lambda fh: json.dump(payload, fh, default=str)
        )

    @staticmethod
    def _write(dest: Union[str, IO[str]], render: Callable[[IO[str]], None]) -> None:
        if isinstance(dest, str):
            with open(dest, "w") as fh:
                render(fh)
        else:
            render(dest)


_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-wide tracer (default: :data:`NULL_TRACER`)."""
    return _tracer


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]):
    """Install ``tracer`` (``None`` = disable); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous
