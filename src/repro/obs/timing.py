"""Wall-clock timing through one code path.

:class:`timed` replaces the ad-hoc ``time.perf_counter()`` pairs that
used to live in ``repro.eval``: it measures a block (context manager)
or a function (decorator), exposes the elapsed ``seconds``, opens a
tracer span of the same name, and — when metrics are enabled — records
the duration into the ``<name>.seconds`` histogram.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, TypeVar

from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

__all__ = ["timed"]

F = TypeVar("F", bound=Callable[..., Any])


class timed:
    """Measure wall time; usable as context manager or decorator.

    >>> with timed("sched.walltime", label="9 PEs") as t:
    ...     do_work()
    >>> t.seconds
    0.123...

    >>> @timed("eval.table2")
    ... def table2(): ...
    """

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.seconds: Optional[float] = None
        self._span = None
        self._t0 = 0.0

    def __enter__(self) -> "timed":
        self._span = get_tracer().span(self.name, **self.attrs)
        self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.seconds = time.perf_counter() - self._t0
        assert self._span is not None
        self._span.__exit__(*exc)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.observe(f"{self.name}.seconds", self.seconds, **self.attrs)
        return False

    def __call__(self, fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with timed(self.name, **self.attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]
