"""Benchmark snapshots: canonical ``BENCH_<tag>.json`` files.

A snapshot rolls one or more pytest-benchmark ``--benchmark-json``
outputs into a single schema-versioned file: a flat ``metrics`` map of
named measurement points plus machine/environment provenance.  Checked
in next to the code (``BENCH_seed.json`` is the first baseline), the
snapshots give the repo a perf trajectory that
:mod:`repro.obs.regress` can diff and gate on.

Every metric point carries its *kind*, which decides how the regression
check treats it:

* ``count`` — deterministic pipeline outputs (simulated cycles,
  placement attempts, copies inserted).  Identical on every machine;
  regressions are gated by default.
* ``ratio`` — machine-relative ratios (speedups, hit rates).  Roughly
  portable; gated only with ``--include-ratios``.
* ``time`` — wall-clock (seconds, cycles/sec).  Machine-dependent;
  gated only with ``--include-times`` (same-machine comparisons).
* ``info`` — context (cpu count, job counts); never gated.

Snapshot schema (``BENCH_SCHEMA = 1``)::

    {"schema": 1, "tag": "seed", "created_utc": "...",
     "provenance": {"hostname": ..., "platform": ..., "python": ...,
                    "cpu_count": ..., "git_rev": ...},
     "metrics": {"<name>": {"value": 1.23, "unit": "seconds",
                            "direction": "lower", "kind": "time"}},
     "sources": ["bench_sim_throughput", ...]}

See docs/observability.md ("Benchmark snapshots").
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BENCH_SCHEMA",
    "environment_provenance",
    "metrics_from_benchmark_json",
    "build_snapshot",
    "load_snapshot",
    "write_snapshot",
    "is_snapshot",
]

#: bump when the snapshot layout or metric-point fields change shape
BENCH_SCHEMA = 1

#: numeric ``extra_info`` keys that are context, not measurements
_INFO_KEYS = frozenset(
    {"cpu_count", "parallel_jobs", "rounds", "iterations"}
)

#: ``obs.internals`` scalars that are deterministic pipeline counts
_INTERNAL_COUNT_KEYS = (
    "copies_inserted",
    "placement_attempts",
    "placement_accepted",
    "sim_cycles",
    "vector_batches",
    "vector_lanes",
    "vector_cohort_splits",
    "vector_cohort_merges",
)


def environment_provenance() -> Dict[str, Any]:
    """Where a snapshot was measured: host, platform, python, git rev."""
    try:
        git_rev: Optional[str] = (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        git_rev = None
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "git_rev": git_rev,
    }


def _point(value: float, unit: str, direction: Optional[str], kind: str) -> Dict[str, Any]:
    return {"value": value, "unit": unit, "direction": direction, "kind": kind}


def classify_metric(name: str) -> Tuple[str, Optional[str], str]:
    """``(unit, direction, kind)`` inferred from a metric's short name."""
    short = name.rsplit(".", 1)[-1]
    if short in _INFO_KEYS:
        return ("", None, "info")
    if "cycles_per_sec" in short or short.endswith("_per_sec"):
        return ("per_sec", "higher", "time")
    if short.endswith("seconds") or short.endswith("_ms"):
        return ("seconds" if not short.endswith("_ms") else "ms", "lower", "time")
    if "speedup" in short or "hit_rate" in short or "fraction" in short:
        return ("ratio", "higher", "ratio")
    if "cycles" in short or "contexts" in short or short in _INTERNAL_COUNT_KEYS:
        return ("count", "lower", "count")
    return ("", None, "info")


def _source_name(data: Dict[str, Any], fallback: str) -> str:
    """A stable short name for one benchmark-JSON input file."""
    benches = data.get("benchmarks") or []
    if benches:
        # "benchmarks/bench_sim_throughput.py::test_x" -> module stem
        fullname = benches[0].get("fullname", "")
        module = fullname.split("::", 1)[0]
        stem = os.path.splitext(os.path.basename(module))[0]
        if stem:
            return stem
    return fallback


def metrics_from_benchmark_json(
    data: Dict[str, Any], *, source: str
) -> Dict[str, Dict[str, Any]]:
    """Flatten one pytest-benchmark JSON into namespaced metric points.

    Per benchmark: the timing stats (``<source>.<test>.mean_seconds`` /
    ``min_seconds``) and every numeric ``extra_info`` entry.  Per file:
    the deterministic ``obs.internals`` counters attached by
    ``benchmarks/conftest.py``, namespaced ``<source>.obs.<key>`` so a
    partial re-run (the CI smoke subset) still matches the baseline
    keys it produces.
    """
    metrics: Dict[str, Dict[str, Any]] = {}
    for bench in data.get("benchmarks", []):
        test = bench.get("name", "?").split("[", 1)[0]
        base = f"{source}.{test}"
        stats = bench.get("stats") or {}
        for stat in ("mean", "min"):
            if isinstance(stats.get(stat), (int, float)):
                metrics[f"{base}.{stat}_seconds"] = _point(
                    stats[stat], "seconds", "lower", "time"
                )
        for key, value in sorted((bench.get("extra_info") or {}).items()):
            if key == "obs_internals" or not isinstance(value, (int, float)):
                continue
            unit, direction, kind = classify_metric(key)
            metrics[f"{base}.{key}"] = _point(value, unit, direction, kind)
    internals = (data.get("obs") or {}).get("internals") or {}
    for key in _INTERNAL_COUNT_KEYS:
        value = internals.get(key)
        if isinstance(value, (int, float)):
            metrics[f"{source}.obs.{key}"] = _point(
                value, "count", "lower", "count"
            )
    return metrics


def build_snapshot(
    tag: str,
    inputs: Iterable[Tuple[str, Dict[str, Any]]],
    *,
    note: Optional[str] = None,
) -> Dict[str, Any]:
    """A snapshot dict from ``(path, parsed benchmark JSON)`` pairs."""
    metrics: Dict[str, Dict[str, Any]] = {}
    sources: List[str] = []
    for path, data in inputs:
        fallback = os.path.splitext(os.path.basename(path))[0]
        source = _source_name(data, fallback)
        sources.append(source)
        for name, point in metrics_from_benchmark_json(data, source=source).items():
            metrics[name] = point
    snapshot: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "tag": tag,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "provenance": environment_provenance(),
        "metrics": dict(sorted(metrics.items())),
        "sources": sources,
    }
    if note:
        snapshot["note"] = note
    return snapshot


def is_snapshot(data: Dict[str, Any]) -> bool:
    """Whether a parsed JSON file is a ``BENCH_*`` snapshot (vs a raw
    pytest-benchmark output)."""
    return isinstance(data, dict) and "metrics" in data and "tag" in data


def load_snapshot(path: str) -> Dict[str, Any]:
    """Parse ``path`` as a snapshot; raw benchmark JSON is converted
    on the fly (tagged with its filename)."""
    with open(path) as fh:
        data = json.load(fh)
    if is_snapshot(data):
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{path}: snapshot schema {data.get('schema')!r}, "
                f"expected {BENCH_SCHEMA}"
            )
        return data
    tag = os.path.splitext(os.path.basename(path))[0]
    return build_snapshot(tag, [(path, data)])


def write_snapshot(path: str, snapshot: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
