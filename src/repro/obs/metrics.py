"""Process-local metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` collects named, optionally-labelled series
(``sched.placement.rejected{reason=pe_busy}``) and renders them to a
plain dict (JSON-ready snapshot) or a human-readable report.

The process-wide default registry is *disabled*: every ``inc`` /
``observe`` / ``set_gauge`` returns immediately after one boolean
check, so the instrumented scheduler and simulator pay near-zero cost
until a caller installs an enabled registry via :func:`set_metrics`
or :func:`repro.obs.observe`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "render_key",
]

#: (metric name, sorted (label, value) pairs)
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> str:
    """``name{k=v,...}`` in deterministic label order."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """Streaming distribution: exact count/sum/min/max + a bounded
    sample reservoir (first ``cap`` observations) for percentiles."""

    __slots__ = ("count", "total", "vmin", "vmax", "_sample", "_cap")

    def __init__(self, cap: int = 4096) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._sample: List[float] = []
        self._cap = cap

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if len(self._sample) < self._cap:
            self._sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained sample (0..100)."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with optional labels."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._hists: Dict[_Key, Histogram] = {}

    # -- writers (no-ops when disabled) ---------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        if not self.enabled:
            return
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        if not self.enabled:
            return
        self._gauges[_key(name, labels)] = value

    def set_max(self, name: str, value: float, **labels: Any) -> None:
        """Raise the gauge ``name{labels}`` to ``value`` if larger."""
        if not self.enabled:
            return
        key = _key(name, labels)
        if key not in self._gauges or value > self._gauges[key]:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        if not self.enabled:
            return
        key = _key(name, labels)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram()
        hist.observe(value)

    # -- readers --------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._hists.get(_key(name, labels))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready dict of everything recorded so far."""
        return {
            "counters": {
                render_key(n, lb): v
                for (n, lb), v in sorted(self._counters.items())
            },
            "gauges": {
                render_key(n, lb): v
                for (n, lb), v in sorted(self._gauges.items())
            },
            "histograms": {
                render_key(n, lb): h.summary()
                for (n, lb), h in sorted(self._hists.items())
            },
        }

    def render_report(self) -> str:
        """Aligned, human-readable dump of the snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(k) for k in snap["counters"])
            for key, value in snap["counters"].items():
                lines.append(f"  {key:<{width}}  {value:g}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(k) for k in snap["gauges"])
            for key, value in snap["gauges"].items():
                lines.append(f"  {key:<{width}}  {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for key, s in snap["histograms"].items():
                lines.append(
                    f"  {key}  count={s['count']:g} sum={s['sum']:.6g} "
                    f"mean={s['mean']:.6g} min={s['min']:.6g} "
                    f"p50={s['p50']:.6g} p90={s['p90']:.6g} max={s['max']:.6g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()


#: default registry: disabled so the instrumented hot paths cost ~nothing
_metrics = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (disabled unless one was installed)."""
    return _metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` = disabled); returns the previous."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else MetricsRegistry(enabled=False)
    return previous
