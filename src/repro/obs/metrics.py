"""Process-local metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` collects named, optionally-labelled series
(``sched.placement.rejected{reason=pe_busy}``) and renders them to a
plain dict (JSON-ready snapshot) or a human-readable report.

The process-wide default registry is *disabled*: every ``inc`` /
``observe`` / ``set_gauge`` returns immediately after one boolean
check, so the instrumented scheduler and simulator pay near-zero cost
until a caller installs an enabled registry via :func:`set_metrics`
or :func:`repro.obs.observe`.

Histograms are *streaming*: besides the exact moments (count / sum /
min / max) every observation lands in a fixed-relative-error log
bucket, so p50/p90/p99 stay accurate to a few percent no matter how
many values stream through, with bounded memory.  Bucket counts (and
therefore percentiles) merge exactly across registries, which is what
lets :class:`~repro.perf.parallel.ParallelEvaluator` fold per-worker
registries back into the parent without losing distribution shape:
``parent.merge(worker.dump())``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "render_key",
]

#: (metric name, sorted (label, value) pairs)
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> str:
    """``name{k=v,...}`` in deterministic label order."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


#: log-bucket growth factor: each bucket spans 4% of relative range,
#: so streamed percentiles carry at most ~2% relative error
_BUCKET_GROWTH = 1.04
_LOG_GROWTH = math.log(_BUCKET_GROWTH)


class Histogram:
    """Streaming distribution: exact count/sum/min/max + fixed-relative-
    error log buckets for percentiles, plus a bounded sample reservoir
    (first ``cap`` observations) kept for exact small-run inspection.

    The log buckets make percentiles *streaming* (bounded memory, any
    number of observations) and *mergeable*: two histograms over
    disjoint observation sets merge into exactly the histogram the
    union would have produced — the property the cross-process metric
    fold relies on.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "_sample", "_cap", "_buckets")

    def __init__(self, cap: int = 4096) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._sample: List[float] = []
        self._cap = cap
        #: bucket index -> observation count (see :func:`_bucket_index`)
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def _bucket_index(value: float) -> int:
        """Index of the log bucket holding ``value`` (sign-symmetric)."""
        if value == 0:
            return 0
        magnitude = 1 + max(0, math.floor(math.log(abs(value)) / _LOG_GROWTH) + 2**30)
        return magnitude if value > 0 else -magnitude

    @staticmethod
    def _bucket_value(index: int) -> float:
        """Representative (geometric-mid) value of one bucket."""
        if index == 0:
            return 0.0
        magnitude = abs(index) - 1 - 2**30
        value = _BUCKET_GROWTH ** (magnitude + 0.5)
        return value if index > 0 else -value

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if len(self._sample) < self._cap:
            self._sample.append(value)
        idx = self._bucket_index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Streamed nearest-rank percentile (0..100), ~2% relative error.

        Walks the log buckets to the observation of rank
        ``ceil(p/100 * count)`` and returns that bucket's representative
        value, clamped into ``[min, max]`` so the extremes are exact.
        """
        if not self.count:
            return 0.0
        rank = max(1, min(self.count, math.ceil(p / 100.0 * self.count)))
        seen = 0
        value = 0.0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                value = self._bucket_value(idx)
                break
        assert self.vmin is not None and self.vmax is not None
        return max(self.vmin, min(self.vmax, value))

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in: exact moments, exact bucket counts."""
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.vmin is None or (other.vmin is not None and other.vmin < self.vmin):
            self.vmin = other.vmin
        if self.vmax is None or (other.vmax is not None and other.vmax > self.vmax):
            self.vmax = other.vmax
        room = self._cap - len(self._sample)
        if room > 0:
            self._sample.extend(other._sample[:room])
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n

    def dump(self) -> Dict[str, Any]:
        """Picklable/JSON-able raw state (mergeable, unlike a summary)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "sample": list(self._sample),
            "buckets": {str(k): v for k, v in self._buckets.items()},
        }

    @classmethod
    def from_dump(cls, data: Dict[str, Any]) -> "Histogram":
        h = cls()
        h.count = data["count"]
        h.total = data["sum"]
        h.vmin = data["min"]
        h.vmax = data["max"]
        h._sample = list(data["sample"])[: h._cap]
        h._buckets = {int(k): v for k, v in data["buckets"].items()}
        return h

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with optional labels."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._hists: Dict[_Key, Histogram] = {}
        #: gauges written through :meth:`set_max` — merged as peaks
        self._max_gauges: set = set()

    # -- writers (no-ops when disabled) ---------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        if not self.enabled:
            return
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        if not self.enabled:
            return
        self._gauges[_key(name, labels)] = value

    def set_max(self, name: str, value: float, **labels: Any) -> None:
        """Raise the gauge ``name{labels}`` to ``value`` if larger."""
        if not self.enabled:
            return
        key = _key(name, labels)
        self._max_gauges.add(key)
        if key not in self._gauges or value > self._gauges[key]:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        if not self.enabled:
            return
        key = _key(name, labels)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram()
        hist.observe(value)

    # -- readers --------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._hists.get(_key(name, labels))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready dict of everything recorded so far."""
        return {
            "counters": {
                render_key(n, lb): v
                for (n, lb), v in sorted(self._counters.items())
            },
            "gauges": {
                render_key(n, lb): v
                for (n, lb), v in sorted(self._gauges.items())
            },
            "histograms": {
                render_key(n, lb): h.summary()
                for (n, lb), h in sorted(self._hists.items())
            },
        }

    # -- cross-process fold ---------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Raw, picklable state for :meth:`merge` (lossless, unlike
        :meth:`snapshot` whose histograms are already summarised)."""
        return {
            "counters": [
                [name, list(labels), value]
                for (name, labels), value in self._counters.items()
            ],
            "gauges": [
                [name, list(labels), value, (name, labels) in self._max_gauges]
                for (name, labels), value in self._gauges.items()
            ],
            "histograms": [
                [name, list(labels), hist.dump()]
                for (name, labels), hist in self._hists.items()
            ],
        }

    def merge(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another registry (e.g. a pool
        worker) into this one.

        Counters add, histograms merge exactly (moments + buckets),
        ``set_max`` gauges keep the peak, and plain gauges keep the
        *incoming* value (last-write-wins, matching what a serial run
        of the same work would have left behind).
        """
        for name, labels, value in dump["counters"]:
            key = (name, tuple(tuple(lb) for lb in labels))
            self._counters[key] = self._counters.get(key, 0) + value
        for name, labels, value, is_max in dump["gauges"]:
            key = (name, tuple(tuple(lb) for lb in labels))
            if is_max:
                self._max_gauges.add(key)
                if key not in self._gauges or value > self._gauges[key]:
                    self._gauges[key] = value
            else:
                self._gauges[key] = value
        for name, labels, hist_dump in dump["histograms"]:
            key = (name, tuple(tuple(lb) for lb in labels))
            hist = self._hists.get(key)
            if hist is None:
                self._hists[key] = Histogram.from_dump(hist_dump)
            else:
                hist.merge(Histogram.from_dump(hist_dump))

    def render_report(self) -> str:
        """Aligned, human-readable dump of the snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(k) for k in snap["counters"])
            for key, value in snap["counters"].items():
                lines.append(f"  {key:<{width}}  {value:g}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(k) for k in snap["gauges"])
            for key, value in snap["gauges"].items():
                lines.append(f"  {key:<{width}}  {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for key, s in snap["histograms"].items():
                lines.append(
                    f"  {key}  count={s['count']:g} sum={s['sum']:.6g} "
                    f"mean={s['mean']:.6g} min={s['min']:.6g} "
                    f"p50={s['p50']:.6g} p90={s['p90']:.6g} max={s['max']:.6g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()
        self._max_gauges.clear()


#: default registry: disabled so the instrumented hot paths cost ~nothing
_metrics = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (disabled unless one was installed)."""
    return _metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` = disabled); returns the previous."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else MetricsRegistry(enabled=False)
    return previous
