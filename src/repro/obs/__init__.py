"""Observability: structured tracing, metrics and profiling.

Zero-dependency layer threaded through the scheduler, router, register
allocator, simulator and eval driver.  Three pieces:

* :mod:`repro.obs.trace` — :class:`Tracer` recording nested spans and
  instant events, exported as JSONL or Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto),
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and histograms (``sched.placement.rejected{reason=...}``,
  ``route.copies.inserted``, ``sim.cycles``, ``rf.pressure.max``),
* :mod:`repro.obs.timing` — :class:`timed`, the one wall-clock path,
* :mod:`repro.obs.ledger` — :class:`RunLedger`, a schema-versioned
  JSONL record of every pipeline invocation (fingerprints, cache
  hit/miss, verifier outcome, backend throughput),
* :mod:`repro.obs.bench` / :mod:`repro.obs.regress` — canonical
  ``BENCH_<tag>.json`` benchmark snapshots and the perf-regression
  comparator behind ``python -m repro.obs diff/check``.

By default both the tracer and the registry are inert no-ops, so the
instrumentation in the hot paths costs ~nothing.  Turn everything on
for a block with::

    from repro import obs

    with obs.observe() as session:
        schedule = schedule_kernel(kernel, comp)
    session.tracer.to_chrome("out.trace.json")
    print(session.metrics.render_report())

or run ``python -m repro.obs`` for the command-line harness.  See
docs/observability.md for the event taxonomy and metric names.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.obs.ledger import (
    NULL_LEDGER,
    NullLedger,
    RunLedger,
    get_ledger,
    set_ledger,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    render_key,
    set_metrics,
)
from repro.obs.timing import timed
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullLedger",
    "NULL_LEDGER",
    "NullTracer",
    "NULL_TRACER",
    "ObsSession",
    "RunLedger",
    "Tracer",
    "get_ledger",
    "get_metrics",
    "get_tracer",
    "observe",
    "render_key",
    "set_ledger",
    "set_metrics",
    "set_tracer",
    "timed",
]


@dataclass
class ObsSession:
    """Handle yielded by :func:`observe`."""

    tracer: Tracer
    metrics: MetricsRegistry


@contextmanager
def observe(
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[ObsSession]:
    """Install an enabled tracer + metrics registry for the block.

    Previously installed globals are restored on exit, so sessions
    nest and never leak into unrelated code.
    """
    active_tracer = tracer if tracer is not None else Tracer()
    active_metrics = metrics if metrics is not None else MetricsRegistry()
    prev_tracer = set_tracer(active_tracer)
    prev_metrics = set_metrics(active_metrics)
    try:
        yield ObsSession(tracer=active_tracer, metrics=active_metrics)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
