"""Data locality and routing (Section V-G).

When an operand is not accessible to the PE a candidate is being placed
on, the scheduler copies the value across the interconnect along the
Floyd shortest path, preferably *before* the current time step "to
prevent extension of the schedule".  Copies are MOVE operations on the
intermediate PEs; the final hop is read through the last holder's
out-port in the consuming cycle.

All plans are made inside a :class:`~repro.sched.state.Txn` so a failed
placement leaves no residue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.arch.composition import Composition
from repro.obs import get_metrics
from repro.sched.schedule import OperandSource, PlacedOp, ValueKind
from repro.sched.state import Txn, ValueTable

__all__ = ["AccessPlan", "Router"]


@dataclass
class AccessPlan:
    """Result of planning one operand access at (pe, cycle)."""

    source: OperandSource
    #: (pe, cycle, vid) out-port bookings required (including the final
    #: read-through, when the source is remote)
    port_bookings: List[Tuple[int, int, int]]
    #: MOVE copies added (already in the txn)
    moves: List[PlacedOp]
    #: (vid, holder_pe, ready) of new copy values to register on commit
    new_copies: List[Tuple[int, int, int]]


class Router:
    def __init__(
        self,
        comp: Composition,
        values: ValueTable,
        region_start_fn: Callable[[], int],
    ) -> None:
        self.comp = comp
        self.icn = comp.interconnect
        self.values = values
        #: plan-level metrics (attempt counts include plans later
        #: discarded by a failed placement; committed-copy counts live
        #: in the scheduler's commit path)
        self.obs_metrics = get_metrics()
        #: earliest cycle retroactive copies may be placed at (the
        #: current superblock's start — earlier regions are sealed)
        self._region_start = region_start_fn

    # -- public ---------------------------------------------------------

    def plan_access(
        self,
        txn: Txn,
        pe: int,
        cycle: int,
        holders: Sequence[Tuple[int, int, int]],
        copy_kind: ValueKind,
        copy_origin,
    ) -> Optional[AccessPlan]:
        """Plan reading a value on ``pe`` at ``cycle``.

        ``holders`` lists ``(holder_pe, vid, ready)`` locations of the
        value.  ``copy_kind``/``copy_origin`` describe copy values to
        mint if a copy chain is needed.  Returns ``None`` if impossible
        at this cycle.
        """
        metrics = self.obs_metrics
        if metrics.enabled:
            metrics.inc("route.plan.requests")
        ready_holders = [h for h in holders if h[2] <= cycle]

        # 1. local RF
        for hpe, vid, _ready in ready_holders:
            if hpe == pe:
                if metrics.enabled:
                    metrics.inc("route.plan.resolved", kind="local")
                return AccessPlan(OperandSource(pe, vid), [], [], [])

        # 2. direct neighbour through its out-port
        for hpe, vid, _ready in sorted(
            ready_holders, key=lambda h: self.icn.degree(h[0])
        ):
            if self.icn.has_link(hpe, pe) and txn.outport_compatible(hpe, cycle, vid):
                if metrics.enabled:
                    metrics.inc("route.plan.resolved", kind="port")
                return AccessPlan(
                    OperandSource(hpe, vid), [(hpe, cycle, vid)], [], []
                )

        # 3. copy chain along the shortest path (Section V-G: "the value
        #    is copied if the required resources have empty time steps")
        dist_to_pe = self.icn.distances_to(pe)
        candidates = sorted(
            (h for h in holders),
            key=lambda h: (dist_to_pe[h[0]], h[2]),
        )
        for into_dst in (False, True):
            for hpe, vid, ready in candidates:
                plan = self._plan_chain(
                    txn, hpe, vid, ready, pe, cycle, copy_kind, copy_origin,
                    into_dst=into_dst,
                )
                if plan is not None:
                    if metrics.enabled:
                        metrics.inc("route.plan.resolved", kind="chain")
                        metrics.observe("route.chain.hops", len(plan.moves))
                    return plan
        if metrics.enabled:
            metrics.inc("route.plan.unroutable")
        return None

    # -- copy chains -------------------------------------------------------

    def _plan_chain(
        self,
        txn: Txn,
        src_pe: int,
        src_vid: int,
        src_ready: int,
        dst_pe: int,
        cycle: int,
        copy_kind: ValueKind,
        copy_origin,
        *,
        into_dst: bool = False,
    ) -> Optional[AccessPlan]:
        path = self.icn.path(src_pe, dst_pe)
        if path is None or len(path) < 2:
            return None
        # Without into_dst, hops run on path[1:-1] and the final link is
        # a port read at `cycle`; with into_dst, the value is moved all
        # the way into the destination's RF (needed when the last
        # holder's out-port is contended at `cycle`).
        intermediates = path[1:] if into_dst else path[1:-1]
        region_start = self._region_start()

        moves: List[PlacedOp] = []
        ports: List[Tuple[int, int, int]] = []
        new_copies: List[Tuple[int, int, int]] = []
        cur_pe, cur_vid, cur_ready = src_pe, src_vid, src_ready

        for hop_pe in intermediates:
            hop_cycle = self._find_hop_cycle(
                txn, cur_pe, cur_vid, cur_ready, hop_pe, region_start, cycle - 1
            )
            if hop_cycle is None:
                return None
            new_vid = self.values.new(copy_kind, hop_pe, copy_origin)
            move = PlacedOp(
                cycle=hop_cycle,
                pe=hop_pe,
                opcode="MOVE",
                duration=self.comp.pes[hop_pe].duration("MOVE"),
                srcs=(OperandSource(cur_pe, cur_vid),),
                dest_vid=new_vid,
                issue_only=self.comp.pes[hop_pe].pipelined,
            )
            txn.add_op(move)
            txn.book_outport(cur_pe, hop_cycle, cur_vid)
            txn.value_uses.append((cur_vid, hop_cycle))
            finish = hop_cycle + move.duration - 1
            txn.value_defs.append((new_vid, finish))
            moves.append(move)
            ports.append((cur_pe, hop_cycle, cur_vid))
            new_copies.append((new_vid, hop_pe, finish + 1))
            cur_pe, cur_vid, cur_ready = hop_pe, new_vid, finish + 1

        if into_dst:
            # the value now sits in dst_pe's own RF
            if cur_pe != dst_pe or cur_ready > cycle:
                return None
            return AccessPlan(
                OperandSource(dst_pe, cur_vid), ports, moves, new_copies
            )
        # final read-through at `cycle`
        if cur_ready > cycle or not txn.outport_compatible(cur_pe, cycle, cur_vid):
            return None
        ports.append((cur_pe, cycle, cur_vid))
        return AccessPlan(OperandSource(cur_pe, cur_vid), ports, moves, new_copies)

    def _find_hop_cycle(
        self,
        txn: Txn,
        from_pe: int,
        from_vid: int,
        from_ready: int,
        hop_pe: int,
        earliest: int,
        latest: int,
    ) -> Optional[int]:
        """Earliest cycle a MOVE onto ``hop_pe`` can run."""
        if not self.comp.pes[hop_pe].supports("MOVE"):
            return None
        duration = self.comp.pes[hop_pe].duration("MOVE")
        pipelined = self.comp.pes[hop_pe].pipelined
        c = max(earliest, from_ready)
        while c <= latest:
            busy_ok = (
                txn.pe_free(hop_pe, c, 1) and txn.finish_free(hop_pe, c + duration - 1)
                if pipelined
                else txn.pe_free(hop_pe, c, duration)
            )
            if (
                busy_ok
                and txn.outport_compatible(from_pe, c, from_vid)
                and c + duration - 1 <= latest
            ):
                return c
            c += 1
        return None
