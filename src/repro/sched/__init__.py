"""The paper's scheduler (Section V).

A resource- and routing-aware list scheduler for inhomogeneous and
irregular CGRA compositions with support for complex control flow:

* list scheduling with longest-path priorities (Algorithm 1),
* speculation + predication instead of phi nodes (Section V-B),
* loop-compatibility handling for nested loops (Section V-C),
* local-variable home assignment and copy tracking (Section V-D),
* read/pWRITE fusing (Section V-E),
* attraction-based PE ordering (Section V-G),
* Floyd-shortest-path copy insertion for routing (Section V-G),
* C-Box condition planning, one status per cycle (Section V-H),
* lifetime analysis + left-edge RF/C-Box allocation (Section V-I).

Entry point: :func:`repro.sched.scheduler.schedule_kernel`.
"""

from repro.sched.schedule import (
    OperandSource,
    PlacedOp,
    PlannedCBoxOp,
    PlannedBranch,
    Schedule,
    SchedulingError,
)
from repro.sched.scheduler import RegionScheduler, schedule_kernel

__all__ = [
    "OperandSource",
    "PlacedOp",
    "PlannedCBoxOp",
    "PlannedBranch",
    "Schedule",
    "SchedulingError",
    "RegionScheduler",
    "schedule_kernel",
]
