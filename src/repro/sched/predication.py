"""C-Box condition planning (Sections V-B and V-H).

Conditions are evaluated one status bit per cycle: the first compare's
status is *stored* as a complementary pair, every further leaf is
*combined* with the stored pair (``AND``/``OR``, negated variants for
negated leaves).  For a condition nested below an enclosing speculation
predicate, the pair is the FORK of the outer predicate ("the stored
condition bit is a conjunction of the outer and current condition"):
``pos = outer ∧ s``, ``neg = outer ∧ ¬s``.

The planner assigns each compare node of a condition a :class:`CondStep`
(function, stored operand, destination pair); the scheduler books the
C-Box combine in the same cycle the compare finishes (PE statuses are
transient).  ``pair_ready[pair] = combine_cycle + 1`` is when stored
reads of the pair become legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.cbox import CBoxFunc
from repro.ir.nodes import Node
from repro.ir.regions import CondExpr, CondLeaf, UnsupportedConditionError
from repro.sched.schedule import PredRef, SchedulingError

__all__ = ["CondStep", "PredPlanner"]


@dataclass
class CondStep:
    """C-Box activity bound to one condition compare node."""

    leaf: Node
    func: CBoxFunc
    #: stored operand (None for STORE/STORE_NOT)
    read: Optional[PredRef]
    #: pair receiving the (pos, neg) results
    write_pair: int
    #: swap pos/neg destinations (FORK_AND of a negated leaf)
    swap_writes: bool
    #: True for the last step: ``write_pair`` is the condition's pair
    is_final: bool


class PredPlanner:
    """Allocates condition pairs and plans their evaluation."""

    def __init__(self) -> None:
        self._next_pair = 0
        #: pair -> cycle from which stored reads are legal
        self.pair_ready: Dict[int, int] = {}
        #: pair -> cycle of the combine that wrote it
        self.combined_at: Dict[int, int] = {}
        #: compare node id -> its CondStep
        self.steps: Dict[int, CondStep] = {}

    def new_pair(self) -> int:
        pair = self._next_pair
        self._next_pair += 1
        return pair

    @property
    def n_pairs(self) -> int:
        return self._next_pair

    def plan_condition(
        self, cond: CondExpr, outer: Optional[PredRef]
    ) -> int:
        """Plan evaluation of ``cond`` under ``outer``; returns the pair.

        The pair's pos side is ``outer ∧ cond`` (or plain ``cond`` at the
        outermost level); neg is ``outer ∧ ¬cond`` / ``¬cond``.
        """
        steps = cond.linearize()
        if outer is not None and len(steps) > 1:
            raise UnsupportedConditionError(
                "compound conditions under an enclosing speculation "
                "predicate are not supported by the C-Box's "
                "one-stored-one-incoming combine; use nested ifs"
            )
        plan: List[CondStep] = []
        if outer is not None:
            leaf, _ = steps[0]
            pair = self.new_pair()
            plan.append(
                CondStep(
                    leaf=leaf.node,
                    func=CBoxFunc.FORK_AND,
                    read=outer,
                    write_pair=pair,
                    swap_writes=leaf.negate,
                    is_final=True,
                )
            )
        else:
            prev_pair: Optional[int] = None
            for index, (leaf, combine) in enumerate(steps):
                pair = self.new_pair()
                last = index == len(steps) - 1
                if combine is None:
                    func = CBoxFunc.STORE_NOT if leaf.negate else CBoxFunc.STORE
                    read = None
                elif combine == "and":
                    func = CBoxFunc.AND_NOT if leaf.negate else CBoxFunc.AND
                    read = PredRef(prev_pair, True)  # type: ignore[arg-type]
                else:  # "or"
                    func = CBoxFunc.OR_NOT if leaf.negate else CBoxFunc.OR
                    read = PredRef(prev_pair, True)  # type: ignore[arg-type]
                plan.append(
                    CondStep(
                        leaf=leaf.node,
                        func=func,
                        read=read,
                        write_pair=pair,
                        swap_writes=False,
                        is_final=last,
                    )
                )
                prev_pair = pair
        for step in plan:
            if step.leaf.id in self.steps:
                raise SchedulingError(
                    f"compare {step.leaf!r} feeds two conditions"
                )
            self.steps[step.leaf.id] = step
        return plan[-1].write_pair

    # -- scheduling-time bookkeeping ------------------------------------

    def step_for(self, node: Node) -> Optional[CondStep]:
        return self.steps.get(node.id)

    def note_combined(self, pair: int, cycle: int) -> None:
        self.combined_at[pair] = cycle
        self.pair_ready[pair] = cycle + 1

    def ready_cycle(self, pair: int) -> Optional[int]:
        """Cycle from which stored reads of ``pair`` are legal."""
        return self.pair_ready.get(pair)

    def read_allowed(self, pred: PredRef, cycle: int) -> bool:
        ready = self.pair_ready.get(pred.pair)
        return ready is not None and ready <= cycle
