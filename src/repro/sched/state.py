"""Mutable scheduling state: resources, value locations, variable homes.

The scheduler books three kinds of per-cycle resources (Section V):

* PE execution slots (one operation per PE per cycle; multi-cycle
  operations occupy their PE for ``duration`` cycles),
* PE out-ports (one exposed RF value per PE per cycle — several
  consumers may read the *same* value),
* the C-Box (one combine per cycle, one ``outPE`` selection, one
  ``outctrl`` selection) and the CCU (one branch per cycle).

Placement of an operation may require auxiliary operations (constant
materialisation, copy chains along Floyd paths).  Those are planned in a
:class:`Txn` overlay and committed only if the whole placement succeeds.

Variable state follows Section V-D: each variable has a *home* PE/RF
entry assigned on first use; copies on other PEs are tracked with a
version counter and invalidated by writes.  If/else path divergence is
handled with snapshot/merge (both paths' copies must agree to survive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.ir.nodes import Node, Var
from repro.obs import get_metrics
from repro.sched.schedule import (
    OperandSource,
    PlacedOp,
    PlannedBranch,
    PlannedCBoxOp,
    PredRef,
    SchedulingError,
    ValueInfo,
    ValueKind,
)

__all__ = [
    "ValueTable",
    "ResourceState",
    "Txn",
    "VarState",
    "VarTracker",
    "ConstTracker",
    "SchedCheckpoint",
]


class ValueTable:
    """Registry of symbolic RF values."""

    def __init__(self) -> None:
        self._values: Dict[int, ValueInfo] = {}
        self._next = 0

    def new(self, kind: ValueKind, pe: int, origin=None) -> int:
        vid = self._next
        self._next += 1
        self._values[vid] = ValueInfo(vid=vid, kind=kind, pe=pe, origin=origin)
        metrics = get_metrics()
        if metrics.enabled:
            # includes vids minted during placements later aborted — the
            # gap to committed defs measures speculative planning waste
            metrics.inc("sched.values.minted", kind=kind.name.lower())
        return vid

    def info(self, vid: int) -> ValueInfo:
        return self._values[vid]

    def note_def(self, vid: int, cycle: int) -> None:
        self._values[vid].defs.append(cycle)

    def note_use(self, vid: int, cycle: int) -> None:
        self._values[vid].uses.append(cycle)

    def all(self) -> Dict[int, ValueInfo]:
        return self._values


# ---------------------------------------------------------------------------
# Resources
# ---------------------------------------------------------------------------


class ResourceState:
    """Base resource bookings (committed)."""

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self.pe_ops: Dict[Tuple[int, int], PlacedOp] = {}
        #: (pe, cycle) -> op finishing there (single write port / status)
        self.finishes: Dict[Tuple[int, int], PlacedOp] = {}
        self.outports: Dict[Tuple[int, int], int] = {}
        self.cbox_combine: Dict[int, PlannedCBoxOp] = {}
        self.cbox_outpe: Dict[int, PredRef] = {}
        self.cbox_outctrl: Dict[int, Union[PredRef, str]] = {}
        self.branches: Dict[int, PlannedBranch] = {}
        self.ops: List[PlacedOp] = []

    # -- queries (no txn) ---------------------------------------------

    def pe_free(self, pe: int, cycle: int, duration: int = 1) -> bool:
        return all((pe, c) not in self.pe_ops for c in range(cycle, cycle + duration))

    def outport_at(self, pe: int, cycle: int) -> Optional[int]:
        return self.outports.get((pe, cycle))


@dataclass
class _PlannedPlacement:
    op: PlacedOp
    outport_bookings: List[Tuple[int, int, int]] = field(default_factory=list)


class Txn:
    """Tentative overlay over :class:`ResourceState`.

    Records additional bookings made while planning one candidate
    placement (the operation itself, copy-chain MOVEs, constant
    materialisations, out-port bookings).  ``commit`` merges them into
    the base state; dropping the Txn aborts.
    """

    def __init__(self, base: ResourceState) -> None:
        self.base = base
        self.pe_ops: Dict[Tuple[int, int], PlacedOp] = {}
        self.finishes: Dict[Tuple[int, int], PlacedOp] = {}
        self.outports: Dict[Tuple[int, int], int] = {}
        self.ops: List[PlacedOp] = []
        self.value_defs: List[Tuple[int, int]] = []  # (vid, cycle)
        self.value_uses: List[Tuple[int, int]] = []
        #: deferred location registrations: callables run on commit
        self.on_commit: List = []

    # -- combined views --------------------------------------------------

    def pe_free(self, pe: int, cycle: int, duration: int = 1) -> bool:
        for c in range(cycle, cycle + duration):
            if (pe, c) in self.base.pe_ops or (pe, c) in self.pe_ops:
                return False
        return True

    def finish_free(self, pe: int, cycle: int) -> bool:
        """No other operation finishes on ``pe`` at ``cycle`` (pipelined
        PEs share issue slots but have a single write port)."""
        key = (pe, cycle)
        return key not in self.base.finishes and key not in self.finishes

    def outport_at(self, pe: int, cycle: int) -> Optional[int]:
        key = (pe, cycle)
        if key in self.outports:
            return self.outports[key]
        return self.base.outports.get(key)

    def outport_compatible(self, pe: int, cycle: int, vid: int) -> bool:
        current = self.outport_at(pe, cycle)
        return current is None or current == vid

    # -- tentative bookings ------------------------------------------------

    def add_op(self, op: PlacedOp) -> None:
        busy_until = op.cycle + 1 if op.issue_only else op.cycle + op.duration
        for c in range(op.cycle, busy_until):
            key = (op.pe, c)
            if key in self.pe_ops or key in self.base.pe_ops:
                raise SchedulingError(f"internal: double booking {key}")
            self.pe_ops[key] = op
        fkey = (op.pe, op.final_cycle)
        if op.issue_only:
            if not self.finish_free(op.pe, op.final_cycle):
                raise SchedulingError(f"internal: finish-slot conflict {fkey}")
        self.finishes[fkey] = op
        self.ops.append(op)

    def book_outport(self, pe: int, cycle: int, vid: int) -> None:
        if not self.outport_compatible(pe, cycle, vid):
            raise SchedulingError(
                f"internal: out-port conflict on PE {pe} at {cycle}"
            )
        self.outports[(pe, cycle)] = vid

    def commit(self) -> None:
        self.base.pe_ops.update(self.pe_ops)
        self.base.finishes.update(self.finishes)
        self.base.outports.update(self.outports)
        self.base.ops.extend(self.ops)
        for hook in self.on_commit:
            hook()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("sched.txn.commits")
            metrics.inc("sched.txn.ops_committed", len(self.ops))


# ---------------------------------------------------------------------------
# Variables (Section V-D)
# ---------------------------------------------------------------------------


@dataclass
class VarState:
    home_pe: Optional[int] = None
    home_vid: Optional[int] = None
    version: int = 0
    #: valid copies: pe -> (vid, version, ready_cycle).  Treated as
    #: copy-on-write: a snapshot *shares* this dict with its source
    #: (both flagged ``_copies_shared``), and every mutation path goes
    #: through :meth:`own_copies` / :meth:`drop_copies`, which unshare
    #: first.  Nested-region scheduling therefore stops deep-copying
    #: the copy maps of untouched variables on every snapshot.
    copies: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    #: cycle from which the home value is readable
    home_ready: int = 0
    _copies_shared: bool = field(default=False, repr=False, compare=False)

    def snapshot(self) -> "VarState":
        """O(1) copy: scalars are duplicated, ``copies`` is shared COW."""
        self._copies_shared = True
        clone = VarState(
            home_pe=self.home_pe,
            home_vid=self.home_vid,
            version=self.version,
            copies=self.copies,
            home_ready=self.home_ready,
        )
        clone._copies_shared = True
        return clone

    def own_copies(self) -> Dict[int, Tuple[int, int, int]]:
        """The ``copies`` dict, unshared and safe to mutate in place."""
        if self._copies_shared:
            self.copies = dict(self.copies)
            self._copies_shared = False
        return self.copies

    def drop_copies(self) -> None:
        """Replace ``copies`` with a fresh empty dict (cheap unshare)."""
        self.copies = {}
        self._copies_shared = False

    def set_copies(self, copies: Dict[int, Tuple[int, int, int]]) -> None:
        self.copies = copies
        self._copies_shared = False


class VarTracker:
    """Home assignment + copy/version tracking for all variables."""

    def __init__(self, values: ValueTable) -> None:
        self.values = values
        self._state: Dict[Var, VarState] = {}

    def state(self, var: Var) -> VarState:
        if var not in self._state:
            self._state[var] = VarState()
        return self._state[var]

    def assign_home(self, var: Var, pe: int) -> int:
        """Assign the home PE (first-touch heuristic); returns home vid."""
        st = self.state(var)
        if st.home_pe is not None:
            raise SchedulingError(f"variable {var.name} already homed")
        st.home_pe = pe
        st.home_vid = self.values.new(ValueKind.HOME, pe, var)
        return st.home_vid

    def note_write(self, var: Var, cycle_ready: int) -> None:
        """A write to the home entry: bump version, drop all copies."""
        st = self.state(var)
        st.version += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("sched.vars.writes")
            if st.copies:
                metrics.inc("sched.vars.copies_invalidated", len(st.copies))
        if st.copies:
            st.drop_copies()
        st.home_ready = max(st.home_ready, cycle_ready)

    def add_copy(self, var: Var, pe: int, vid: int, ready: int) -> None:
        st = self.state(var)
        st.own_copies()[pe] = (vid, st.version, ready)

    def valid_copies(self, var: Var) -> List[Tuple[int, int, int]]:
        """(pe, vid, ready) of copies still at the current version."""
        st = self.state(var)
        return [
            (pe, vid, ready)
            for pe, (vid, version, ready) in st.copies.items()
            if version == st.version
        ]

    def invalidate_copies(self, variables: Sequence[Var]) -> None:
        """Drop copies of ``variables`` (loop-entry/exit conservatism)."""
        for var in variables:
            st = self.state(var)
            if st.copies:
                st.drop_copies()

    # -- if/else divergence ------------------------------------------------

    def snapshot(self) -> Dict[Var, VarState]:
        return {var: st.snapshot() for var, st in self._state.items()}

    def restore(self, snap: Dict[Var, VarState]) -> Dict[Var, VarState]:
        """Swap in ``snap``; returns the displaced state.

        Home assignments are *global* naming decisions (a variable owns
        exactly one RF entry for the whole schedule, Section V-D), so
        homes assigned since the snapshot are grafted into the restored
        state — only copies/versions/readiness roll back.
        """
        current = self._state
        self._state = {var: st.snapshot() for var, st in snap.items()}
        for var, st in current.items():
            if st.home_pe is None:
                continue
            mine = self.state(var)
            if mine.home_pe is None:
                mine.home_pe = st.home_pe
                mine.home_vid = st.home_vid
        return current

    def merge(self, other: Dict[Var, VarState]) -> None:
        """Merge the current state with ``other`` (end of if/else).

        Homes are global and must agree.  Versions take the max (+1 if
        they diverged, forcing home reads).  Copies survive only if
        present in both paths with the same vid and both still valid.
        """
        all_vars = set(self._state) | set(other)
        for var in all_vars:
            mine = self.state(var)
            theirs = other.get(var, VarState())
            if theirs.home_pe is not None and mine.home_pe is None:
                mine.home_pe = theirs.home_pe
                mine.home_vid = theirs.home_vid
            elif (
                theirs.home_pe is not None
                and mine.home_pe is not None
                and theirs.home_pe != mine.home_pe
            ):
                raise SchedulingError(
                    f"variable {var.name} homed differently on two paths"
                )
            if theirs.version != mine.version:
                mine.version = max(mine.version, theirs.version) + 1
                mine.drop_copies()
                mine.home_ready = max(mine.home_ready, theirs.home_ready)
                continue
            mine.home_ready = max(mine.home_ready, theirs.home_ready)
            merged: Dict[int, Tuple[int, int, int]] = {}
            for pe, (vid, version, ready) in mine.copies.items():
                other_entry = theirs.copies.get(pe)
                if (
                    other_entry is not None
                    and other_entry[0] == vid
                    and other_entry[1] == version
                ):
                    merged[pe] = (vid, version, max(ready, other_entry[2]))
            mine.set_copies(merged)

    def all_vars(self) -> Iterator[Tuple[Var, VarState]]:
        return iter(self._state.items())


class SchedCheckpoint:
    """Full rollback point over a :class:`RegionScheduler`'s state.

    Strategy backtracking (modulo II search, per-region fallback to the
    list strategy, auto-mode comparison runs) needs to abort a partially
    scheduled region and retry.  ``VarTracker.restore`` is *not* usable
    for that: it grafts homes assigned since the snapshot into the
    restored state (correct for if/else path divergence where both paths
    are kept, wrong for an aborted attempt whose minted value ids are
    being discarded).

    The capture relies on scheduling being *extensional*: committed
    placements only add dict keys, append to lists (``ResourceState.ops``,
    ``ValueInfo.defs``/``uses``) and mint increasing value/pair ids — so
    a checkpoint can restore by truncating back to the captured sizes
    and re-instating captured mappings.  ``attraction`` scores and
    planner ``pair_ready``/``combined_at`` entries are overwritten in
    place, so those are captured as full copies.

    A checkpoint stays valid across multiple rollbacks (each rollback
    hands out fresh dict/``VarState`` copies).
    """

    def __init__(self, sched) -> None:
        values = sched.values
        self._values_next = values._next
        self._value_lens = {
            vid: (len(info.defs), len(info.uses))
            for vid, info in values._values.items()
        }
        res = sched.res
        self._pe_ops = dict(res.pe_ops)
        self._finishes = dict(res.finishes)
        self._outports = dict(res.outports)
        self._cbox_combine = dict(res.cbox_combine)
        self._cbox_outpe = dict(res.cbox_outpe)
        self._cbox_outctrl = dict(res.cbox_outctrl)
        self._branches = dict(res.branches)
        self._n_ops = len(res.ops)
        self._vars = {var: st.snapshot() for var, st in sched.vars._state.items()}
        self._consts = dict(sched.consts._locs)
        planner = sched.planner
        self._next_pair = planner._next_pair
        self._pair_ready = dict(planner.pair_ready)
        self._combined_at = dict(planner.combined_at)
        self._steps = dict(planner.steps)
        self._frontier = sched.frontier
        self._region_start = sched._region_start
        self._bound_targets = set(sched._bound_targets)
        self._n_loop_spans = len(sched.loop_spans)
        self._n_modulo_loops = len(sched.modulo_loops)
        self._attraction = dict(sched.attraction)
        self._node_locs = {k: list(v) for k, v in sched.node_locs.items()}

    def rollback(self, sched) -> None:
        values = sched.values
        for vid in range(self._values_next, values._next):
            values._values.pop(vid, None)
        values._next = self._values_next
        for vid, (n_defs, n_uses) in self._value_lens.items():
            info = values._values[vid]
            del info.defs[n_defs:]
            del info.uses[n_uses:]
        res = sched.res
        res.pe_ops = dict(self._pe_ops)
        res.finishes = dict(self._finishes)
        res.outports = dict(self._outports)
        res.cbox_combine = dict(self._cbox_combine)
        res.cbox_outpe = dict(self._cbox_outpe)
        res.cbox_outctrl = dict(self._cbox_outctrl)
        res.branches = dict(self._branches)
        del res.ops[self._n_ops:]
        sched.vars._state = {
            var: st.snapshot() for var, st in self._vars.items()
        }
        sched.consts._locs = dict(self._consts)
        planner = sched.planner
        planner._next_pair = self._next_pair
        planner.pair_ready = dict(self._pair_ready)
        planner.combined_at = dict(self._combined_at)
        planner.steps = dict(self._steps)
        sched.frontier = self._frontier
        sched._region_start = self._region_start
        sched._bound_targets = set(self._bound_targets)
        del sched.loop_spans[self._n_loop_spans:]
        del sched.modulo_loops[self._n_modulo_loops:]
        sched.attraction = dict(self._attraction)
        sched.node_locs = {k: list(v) for k, v in self._node_locs.items()}
        sched._pending_unfused = []
        sched._fused_done = []
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("sched.checkpoint.rollbacks")


class ConstTracker:
    """Materialised (pseudo-)constants per PE (Section V-D).

    "Constants and pseudo-constants may be copied to multiple different
    PEs ... there is no need to store it back."
    """

    def __init__(self, values: ValueTable) -> None:
        self.values = values
        #: (pe, const) -> (vid, ready_cycle)
        self._locs: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def lookup(self, pe: int, const: int) -> Optional[Tuple[int, int]]:
        return self._locs.get((pe, const))

    def holders(self, const: int) -> List[Tuple[int, int, int]]:
        """(pe, vid, ready) of every PE holding ``const``."""
        return [
            (pe, vid, ready)
            for (pe, c), (vid, ready) in self._locs.items()
            if c == const
        ]

    def register(self, pe: int, const: int, vid: int, ready: int) -> None:
        self._locs[(pe, const)] = (vid, ready)

    def snapshot(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        return dict(self._locs)

    def restore(self, snap) -> Dict[Tuple[int, int], Tuple[int, int]]:
        current = self._locs
        self._locs = dict(snap)
        return current

    def merge(self, other: Dict[Tuple[int, int], Tuple[int, int]]) -> None:
        """Keep only constants materialised on both if/else paths."""
        merged = {}
        for key, (vid, ready) in self._locs.items():
            entry = other.get(key)
            if entry is not None and entry[0] == vid:
                merged[key] = (vid, max(ready, entry[1]))
        self._locs = merged
