"""Value lifetimes with loop extension (Section V-I).

"To determine variable lifetimes the loops have to be taken into
account.  A value that is read in an inner loop needs an extended
lifetime until the end of that loop.  The same holds for the lifetimes
of condition bits."

Rules (applied to the raw [first-event, last-event] interval):

* a value whose last event lies inside a loop it was defined before is
  needed in *every* iteration -> extend to the loop's end (fixpoint over
  nested loops),
* a variable *home* entry is live across the whole span of any loop it
  is written in (loop-carried values wrap around the back edge, so the
  static interval alone would let the left-edge allocator clobber them
  between the write and the next iteration's read).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sched.schedule import LoopSpan, Schedule, ValueInfo, ValueKind

__all__ = ["extend_interval", "value_lifetimes", "condition_pair_lifetimes"]


def extend_interval(
    interval: Tuple[int, int],
    loop_spans: Sequence[LoopSpan],
    *,
    cover_touched_loops: bool = False,
) -> Tuple[int, int]:
    """Apply the loop-extension rules to one [start, end] interval."""
    start, end = interval
    changed = True
    while changed:
        changed = False
        for span in loop_spans:
            if cover_touched_loops and (
                span.contains(start) or span.contains(end)
            ):
                if start > span.start or end < span.end:
                    start = min(start, span.start)
                    end = max(end, span.end)
                    changed = True
                continue
            # defined before the loop, (last) used inside it
            if start < span.start and span.start <= end <= span.end:
                if end != span.end:
                    end = span.end
                    changed = True
    return start, end


def value_lifetimes(schedule: Schedule) -> Dict[int, Tuple[int, int]]:
    """Lifetime interval per value id (after loop extension)."""
    out: Dict[int, Tuple[int, int]] = {}
    for vid, info in schedule.values.items():
        interval = info.interval()
        if interval is None:
            continue
        out[vid] = extend_interval(
            interval,
            schedule.loop_spans,
            # home entries may be loop-carried: cover whole loops they touch
            cover_touched_loops=info.kind is ValueKind.HOME,
        )
    return out


def condition_pair_lifetimes(schedule: Schedule) -> Dict[int, Tuple[int, int]]:
    """Lifetime interval per condition pair (C-Box slots, Section V-I).

    A pair is defined at its combine cycle and used whenever a stored
    read, predication broadcast or branch selection references it.
    """
    defs: Dict[int, List[int]] = {}
    uses: Dict[int, List[int]] = {}
    for cycle, plan in schedule.cbox.items():
        if plan.write_pair is not None:
            defs.setdefault(plan.write_pair, []).append(cycle)
        if plan.read is not None:
            uses.setdefault(plan.read.pair, []).append(cycle)
        for sel in (plan.out_pe, plan.out_ctrl):
            if sel is not None and not isinstance(sel, str):
                uses.setdefault(sel.pair, []).append(cycle)
    out: Dict[int, Tuple[int, int]] = {}
    for pair, dcycles in defs.items():
        events = dcycles + uses.get(pair, [])
        interval = (min(events), max(events))
        # condition bits of loops are re-read every iteration and nested
        # predicates must survive inner loops: cover touched loops
        out[pair] = extend_interval(
            interval, schedule.loop_spans, cover_touched_loops=True
        )
    return out
