"""Per-region scheduling strategies and region analysis.

The scheduler pipeline (see :mod:`repro.sched.pipeline`) runs a *region
analysis* pass before placement: every loop region of the kernel is
assigned a :class:`LoopDecision` naming the strategy that will realise
it.  Placement then dispatches each loop through its strategy:

* :class:`ListStrategy` — the paper's iteration-at-a-time realisation
  (header superblock, guarded exit, body, unconditional back branch).
* ``ModuloStrategy`` (:mod:`repro.sched.modulo`) — software pipelining
  via loop rotation for innermost loops with superblock-shaped bodies.

Strategies are chosen per region, so one kernel may mix both: a
``scheduler_mode="modulo"`` run still realises non-pipelineable loops
(nested loops, loop-carrying ifs in the body) with the list strategy,
and a strategy that fails *during* placement rolls the region back
(:class:`repro.sched.state.SchedCheckpoint`) and falls back to the list
strategy, so every kernel that scheduled before still schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.ir.cdfg import Kernel
from repro.ir.regions import (
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from repro.sched.schedule import LoopSpan, PlannedBranch, SchedulingError
from repro.arch.ccu import BranchKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.scheduler import RegionScheduler

__all__ = [
    "SCHEDULER_MODES",
    "DEFAULT_SCHEDULER_MODE",
    "validate_scheduler_mode",
    "spec_compatible",
    "LoopDecision",
    "RegionPlan",
    "analyze_regions",
    "SchedulingStrategy",
    "ListStrategy",
    "LIST_STRATEGY",
    "strategy_for",
]

#: the three scheduler modes threaded through eval/serve/explore:
#: ``list`` — every loop iteration-at-a-time (the paper's Algorithm 1),
#: ``modulo`` — software-pipeline every eligible innermost loop,
#: ``auto`` — per loop, keep the modulo realisation only when its
#: achieved II beats the list realisation's iteration span.
SCHEDULER_MODES = ("list", "modulo", "auto")
DEFAULT_SCHEDULER_MODE = "list"


def validate_scheduler_mode(mode: str) -> str:
    if mode not in SCHEDULER_MODES:
        raise ValueError(
            f"unknown scheduler_mode {mode!r}; expected one of "
            f"{', '.join(SCHEDULER_MODES)}"
        )
    return mode


def spec_compatible(region: IfRegion, *, under_pred: bool) -> bool:
    """Can this if/else be speculated (Section V-B)?

    Requirements beyond being loop-free: the condition must be
    evaluable by the C-Box's one-stored-one-incoming combine chain,
    and — because nested predicates are FORKed from the enclosing
    pair one status at a time — any condition evaluated *under* a
    predicate must be a single compare.  Ifs that fail the test are
    realised with real CCNT branches instead.
    """
    from repro.ir.regions import UnsupportedConditionError

    if not region.is_speculatable():
        return False
    try:
        steps = region.cond.linearize()
    except UnsupportedConditionError:
        return False
    if under_pred and len(steps) > 1:
        return False
    for sub in region.then_body.walk():
        if isinstance(sub, IfRegion) and len(sub.cond.leaves()) > 1:
            return False
    for sub in region.else_body.walk():
        if isinstance(sub, IfRegion) and len(sub.cond.leaves()) > 1:
            return False
    return True


# ---------------------------------------------------------------------------
# region analysis (pipeline pass 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopDecision:
    """Region-analysis verdict for one loop region."""

    strategy: str  # "list" | "modulo"
    #: why (an eligibility rejection, or "eligible" / "mode")
    reason: str


class RegionPlan:
    """Per-loop strategy decisions keyed by region object identity."""

    def __init__(self, mode: str, decisions: Dict[int, LoopDecision]) -> None:
        self.mode = mode
        self._decisions = decisions

    def decision_for(self, loop: LoopRegion) -> LoopDecision:
        return self._decisions.get(
            id(loop), LoopDecision("list", "unanalysed")
        )

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for decision in self._decisions.values():
            out[decision.strategy] = out.get(decision.strategy, 0) + 1
        return out


def _walk_loops(region: Region):
    if isinstance(region, SeqRegion):
        for item in region.items:
            yield from _walk_loops(item)
    elif isinstance(region, IfRegion):
        yield from _walk_loops(region.then_body)
        yield from _walk_loops(region.else_body)
    elif isinstance(region, LoopRegion):
        yield region
        yield from _walk_loops(region.body)


def analyze_regions(
    kernel: Kernel, *, mode: str, speculate: bool = True
) -> RegionPlan:
    """Pipeline pass 1: pick a strategy for every loop region."""
    validate_scheduler_mode(mode)
    decisions: Dict[int, LoopDecision] = {}
    for loop in _walk_loops(kernel.body):
        if mode == "list":
            decisions[id(loop)] = LoopDecision("list", "mode")
            continue
        from repro.sched.modulo import modulo_eligibility

        reason = modulo_eligibility(loop, speculate=speculate)
        if reason is None:
            decisions[id(loop)] = LoopDecision("modulo", "eligible")
        else:
            decisions[id(loop)] = LoopDecision("list", reason)
    return RegionPlan(mode, decisions)


# ---------------------------------------------------------------------------
# strategies (pipeline pass 2 dispatch)
# ---------------------------------------------------------------------------


class SchedulingStrategy:
    """Realises one loop region on a :class:`RegionScheduler`."""

    name = "abstract"

    def schedule_loop(
        self, sched: "RegionScheduler", loop: LoopRegion
    ) -> None:
        raise NotImplementedError


class ListStrategy(SchedulingStrategy):
    """The paper's realisation: iterations execute back-to-back.

    Per iteration the header superblock evaluates the condition, a
    conditional branch exits when it is false, the body runs, and an
    unconditional branch returns to the header.
    """

    name = "list"

    def schedule_loop(
        self, sched: "RegionScheduler", loop: LoopRegion
    ) -> None:
        for node in loop.header.node_list:
            if node.opcode in ("VARWRITE", "DMA_STORE"):
                raise SchedulingError(
                    "loop headers must be side-effect free (writes belong "
                    "in the loop body)"
                )
        written = Kernel.written_vars(loop)
        # copies made before the loop of variables written inside it go
        # stale on the back edge — invalidate on entry (Section V-D)
        sched.vars.invalidate_copies(sorted(written, key=lambda v: v.name))

        header_start = sched.frontier
        pair = sched.planner.plan_condition(loop.cond, None)
        sched._sched_superblock([loop.header], None)

        exit_branch, exit_label = sched._emit_cond_exit_branch(pair)

        var_snap = sched.vars.snapshot()
        const_snap = sched.consts.snapshot()

        sched._sched_seq(loop.body, None)

        back_cycle = sched._branch_cycle()
        sched.res.branches[back_cycle] = PlannedBranch(
            back_cycle, BranchKind.UNCONDITIONAL, target=header_start
        )
        sched._bound_targets.add(header_start)
        sched.frontier = back_cycle + 1
        sched._bind(exit_label, sched.frontier)
        sched.loop_spans.append(LoopSpan(header_start, back_cycle))

        # the body may have run zero times: merge its state with the
        # state at loop entry (copies/consts survive only if identical)
        other_vars = sched.vars.restore(var_snap)
        sched.vars.merge(other_vars)
        sched.vars.merge(var_snap)
        other_consts = sched.consts.restore(const_snap)
        sched.consts.merge(other_consts)


LIST_STRATEGY = ListStrategy()


def strategy_for(decision: LoopDecision) -> SchedulingStrategy:
    if decision.strategy == "modulo":
        from repro.sched.modulo import ModuloStrategy

        return ModuloStrategy()
    return LIST_STRATEGY
