"""Left-edge allocation for register files and C-Box slots (Section V-I).

"For both RF and C-Box allocation the left edge algorithm is used."

The classic left-edge algorithm sorts intervals by start ("left edge")
and packs each into the lowest-numbered track (RF slot) whose previous
occupant ended before the interval starts.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.obs import get_metrics

__all__ = ["left_edge", "AllocationError"]


class AllocationError(Exception):
    """Intervals need more tracks than the resource provides."""


def left_edge(
    intervals: Dict[Hashable, Tuple[int, int]],
    capacity: int,
    *,
    what: str = "register file",
) -> Tuple[Dict[Hashable, int], int]:
    """Assign a track to every interval; returns (assignment, tracks used).

    Intervals are inclusive ``[start, end]``; two intervals may share a
    track iff they do not overlap.
    """
    order = sorted(intervals.items(), key=lambda kv: (kv[1][0], kv[1][1]))
    track_end: List[int] = []  # last occupied cycle per track
    assignment: Dict[Hashable, int] = {}
    for key, (start, end) in order:
        if end < start:
            raise ValueError(f"interval of {key!r} ends before it starts")
        placed = False
        for track, last in enumerate(track_end):
            if last < start:
                track_end[track] = end
                assignment[key] = track
                placed = True
                break
        if not placed:
            track = len(track_end)
            if track >= capacity:
                raise AllocationError(
                    f"{what} overflow: {track + 1} entries needed, "
                    f"{capacity} available"
                )
            track_end.append(end)
            assignment[key] = track
    metrics = get_metrics()
    if metrics.enabled:
        kind = "cbox" if "C-Box" in what else "rf"
        metrics.observe(f"regalloc.{kind}.tracks_used", len(track_end))
        metrics.set_max(f"{kind}.pressure.max", len(track_end))
    return assignment, len(track_end)
