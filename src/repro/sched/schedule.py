"""Schedule data structures — the scheduler's output.

A :class:`Schedule` is a linear program of cycles (contexts): per-PE
placed operations, per-cycle C-Box plans and CCU branches, plus the
symbolic *value* bookkeeping (who holds what, from when, used where)
that register allocation (left-edge) consumes.

Values are symbolic RF entries identified by integer ids; each value
lives on exactly one PE.  Kinds:

* ``node``  — result of a dataflow node,
* ``home``  — the home RF entry of a local variable (Section V-D),
* ``copy``  — a routed copy of another value,
* ``const`` — a materialised (pseudo-)constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.cbox import CBoxFunc
from repro.arch.ccu import BranchKind
from repro.ir.nodes import ArrayRef, Node, Var

__all__ = [
    "SchedulingError",
    "ValueKind",
    "ValueInfo",
    "OperandSource",
    "PredRef",
    "PlacedOp",
    "PlannedCBoxOp",
    "PlannedBranch",
    "LoopSpan",
    "ModuloLoopInfo",
    "Schedule",
]


class SchedulingError(Exception):
    """The kernel cannot be mapped onto the composition."""


class ValueKind(enum.Enum):
    NODE = "node"
    HOME = "home"
    COPY = "copy"
    CONST = "const"


@dataclass
class ValueInfo:
    vid: int
    kind: ValueKind
    pe: int
    #: origin: Node for NODE, Var for HOME, int for CONST, source vid for COPY
    origin: Union[Node, Var, int, None] = None
    #: cycles at which the value is written / read (for lifetime analysis)
    defs: List[int] = field(default_factory=list)
    uses: List[int] = field(default_factory=list)

    def interval(self) -> Optional[Tuple[int, int]]:
        events = self.defs + self.uses
        if not events:
            return None
        return min(events), max(events)


@dataclass(frozen=True)
class OperandSource:
    """Where a placed op reads one operand.

    ``pe`` is the PE *holding* the value.  If it equals the executing
    PE, the operand comes from the local RF; otherwise it is consumed
    through the holder's out-port (which must be booked for that cycle).
    """

    pe: int
    vid: int


@dataclass(frozen=True)
class PredRef:
    """Reference to one side of a C-Box condition pair.

    ``pair`` is the symbolic pair id; ``positive`` selects the pos slot
    (then-predicate / loop-continue) or the neg slot.
    """

    pair: int
    positive: bool


@dataclass
class PlacedOp:
    """One operation placed on a PE at a cycle."""

    cycle: int
    pe: int
    opcode: str
    duration: int
    srcs: Tuple[OperandSource, ...] = ()
    dest_vid: Optional[int] = None
    immediate: Optional[int] = None
    array: Optional[ArrayRef] = None
    predicate: Optional[PredRef] = None
    node: Optional[Node] = None
    #: pipelined PE: the op occupies its PE only at the issue cycle
    issue_only: bool = False

    @property
    def final_cycle(self) -> int:
        return self.cycle + self.duration - 1

    @property
    def is_compare(self) -> bool:
        from repro.arch.operations import COMPARE_OPS

        return self.opcode in COMPARE_OPS


@dataclass
class PlannedCBoxOp:
    """C-Box activity at one cycle (symbolic pair ids, see Section V-H)."""

    cycle: int
    #: PE whose status is ingested this cycle (None = no combine)
    status_pe: Optional[int] = None
    func: Optional[CBoxFunc] = None
    #: stored operand (pair side) for binary funcs / FORK_AND
    read: Optional[PredRef] = None
    #: pair receiving (pos, neg) results
    write_pair: Optional[int] = None
    #: swap pos/neg destinations (FORK_AND of a negated leaf)
    swap_writes: bool = False
    #: predication broadcast: stored slot side, or "fresh_pos"/"fresh_neg"
    out_pe: Optional[Union[PredRef, str]] = None
    #: branch-selection output
    out_ctrl: Optional[Union[PredRef, str]] = None


@dataclass
class PlannedBranch:
    cycle: int
    kind: BranchKind
    target: Optional[int] = None  # resolved cycle index


@dataclass(frozen=True)
class LoopSpan:
    """Context span of one loop: header start .. back-branch cycle."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("loop span end before start")

    def contains(self, cycle: int) -> bool:
        return self.start <= cycle <= self.end


@dataclass(frozen=True)
class ModuloLoopInfo:
    """One software-pipelined (rotated) loop emitted by sched.modulo.

    ``prologue_start .. kernel_start-1`` holds the rotated prologue (the
    loop header evaluating the condition for iteration 0, plus the guard
    branch that skips the loop on a zero-trip count).  The steady-state
    kernel occupies ``kernel_start .. kernel_end`` and repeats every
    ``ii`` cycles: it merges the body of iteration *k* with the header
    of iteration *k+1* and ends in a conditional back branch.  The
    rotated form has a zero-length epilogue (single-stage pipeline), so
    the loop exit falls through to ``kernel_end + 1``.
    """

    prologue_start: int
    kernel_start: int
    kernel_end: int
    #: achieved initiation interval (kernel span length in cycles)
    ii: int
    #: resource-constrained lower bound on the II
    res_mii: int
    #: recurrence-constrained lower bound on the II
    rec_mii: int
    #: II values tried before one was feasible
    attempts: int

    @property
    def mii(self) -> int:
        """The minimum II the search started from."""
        return max(self.res_mii, self.rec_mii)


@dataclass
class Schedule:
    """Complete schedule of a kernel on a composition."""

    kernel_name: str
    composition_name: str
    n_cycles: int
    ops: List[PlacedOp]
    cbox: Dict[int, PlannedCBoxOp]
    branches: Dict[int, PlannedBranch]
    values: Dict[int, ValueInfo]
    #: var -> home value id (its PE is ValueInfo.pe)
    var_homes: Dict[Var, int]
    #: (pe, cycle) -> vid exposed on the out-port
    outport_bookings: Dict[Tuple[int, int], int]
    loop_spans: List[LoopSpan]
    #: total condition pairs allocated
    n_pred_pairs: int
    #: software-pipelined loops (empty in pure list mode)
    modulo_loops: List[ModuloLoopInfo] = field(default_factory=list)

    # -- queries ---------------------------------------------------------

    def ops_at(self, cycle: int) -> List[PlacedOp]:
        return [op for op in self.ops if op.cycle == cycle]

    def ops_on(self, pe: int) -> List[PlacedOp]:
        return [op for op in self.ops if op.pe == pe]

    def used_contexts(self) -> int:
        """Number of contexts the schedule occupies (Table I metric)."""
        return self.n_cycles

    def home_of(self, var: Var) -> Tuple[int, int]:
        """(pe, vid) of a variable's home RF entry."""
        vid = self.var_homes[var]
        return self.values[vid].pe, vid

    def op_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for op in self.ops:
            hist[op.opcode] = hist.get(op.opcode, 0) + 1
        return hist

    def validate(self, composition) -> None:
        """Structural invariants: no double-booked resources.

        Used heavily by tests and by property-based scheduling checks.
        """
        pe_cycles: Dict[Tuple[int, int], PlacedOp] = {}
        finishes: Dict[Tuple[int, int], PlacedOp] = {}
        for op in self.ops:
            if not composition.pes[op.pe].supports(
                op.opcode if op.opcode != "VARWRITE" else "MOVE"
            ):
                raise SchedulingError(
                    f"PE {op.pe} does not support {op.opcode} ({op})"
                )
            busy_until = op.cycle + 1 if op.issue_only else op.cycle + op.duration
            for c in range(op.cycle, busy_until):
                key = (op.pe, c)
                if key in pe_cycles:
                    raise SchedulingError(
                        f"PE {op.pe} double-booked at cycle {c}: "
                        f"{pe_cycles[key]} vs {op}"
                    )
                pe_cycles[key] = op
            fkey = (op.pe, op.final_cycle)
            if fkey in finishes:
                raise SchedulingError(
                    f"PE {op.pe} has two operations finishing at cycle "
                    f"{op.final_cycle} (single write port)"
                )
            finishes[fkey] = op
        for (pe, cycle), vid in self.outport_bookings.items():
            info = self.values[vid]
            if info.pe != pe:
                raise SchedulingError(
                    f"out-port of PE {pe} exposes value {vid} held on "
                    f"PE {info.pe}"
                )
        for op in self.ops:
            for src in op.srcs:
                if src.pe != op.pe:
                    booked = self.outport_bookings.get((src.pe, op.cycle))
                    if booked != src.vid:
                        raise SchedulingError(
                            f"{op} reads value {src.vid} via PE {src.pe}'s "
                            f"out-port, but that port is booked for {booked}"
                        )
                    if not composition.interconnect.has_link(src.pe, op.pe):
                        raise SchedulingError(
                            f"{op} reads from PE {src.pe} without a link"
                        )
        for cycle, br in self.branches.items():
            if br.kind in (BranchKind.UNCONDITIONAL, BranchKind.CONDITIONAL):
                # contexts are 0..n_cycles-1; a branch *to* n_cycles would
                # fall off the end of context memory
                if not 0 <= (br.target or 0) < self.n_cycles:
                    raise SchedulingError(f"branch target out of range: {br}")
