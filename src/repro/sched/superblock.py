"""Superblock assembly: merge blocks + speculatable if/else regions.

The paper's scheduler speculates across if/else structures: operations
of both paths become ordinary candidates and only their pWRITEs / memory
operations are predicated (Section V-B).  We realise this by flattening
a maximal run of blocks and loop-free if/else regions into one
*superblock*: a DAG of :class:`SBItem` scheduling items with

* VARREAD nodes elided into variable operands (read fusing, V-E),
* CONST nodes elided into constant operands (materialised on demand),
* pWRITE fusing into single-consumer producers (V-E),
* cross-block variable/array hazard edges,
* a predicate (:class:`PredRef`) per item from its if-nesting, and
* :class:`CondStep` plans attached to condition compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.ir.nodes import ArrayRef, Node, Var
from repro.ir.regions import BlockRegion, IfRegion, Region, SeqRegion
from repro.sched.predication import CondStep, PredPlanner
from repro.sched.schedule import PredRef, SchedulingError

__all__ = ["OperandSpec", "SBItem", "Superblock", "build_superblock"]


@dataclass(frozen=True)
class OperandSpec:
    """One operand of a scheduling item after read/const elision."""

    kind: str  # "node" | "var" | "const"
    node: Optional[Node] = None
    var: Optional[Var] = None
    const: Optional[int] = None

    @staticmethod
    def of_node(node: Node) -> "OperandSpec":
        return OperandSpec("node", node=node)

    @staticmethod
    def of_var(var: Var) -> "OperandSpec":
        return OperandSpec("var", var=var)

    @staticmethod
    def of_const(const: int) -> "OperandSpec":
        return OperandSpec("const", const=const)


@dataclass
class SBItem:
    """One schedulable operation of a superblock."""

    node: Node
    pred: Optional[PredRef]
    operands: List[OperandSpec]
    deps: Set[int] = field(default_factory=set)  # item node-ids
    #: variable written by this item (fused pWRITE target, or the
    #: variable of an unfused VARWRITE)
    dest_var: Optional[Var] = None
    #: the VARWRITE node fused into this item, if any
    fused_write: Optional[Node] = None
    cond_step: Optional[CondStep] = None
    priority: int = 0

    @property
    def key(self) -> int:
        return self.node.id

    @property
    def opcode(self) -> str:
        return self.node.opcode


@dataclass
class Superblock:
    items: Dict[int, SBItem]  # keyed by node id
    order: List[int]  # program order of item keys
    #: pairs introduced by this superblock's speculated ifs
    pairs: List[int]
    #: fused pWRITE node id -> producer item key
    fused_writes: Dict[int, int] = field(default_factory=dict)
    #: successor map over the item graph (filled by priority analysis)
    succs: Dict[int, List[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.items)


def _flatten(
    regions: Sequence[Region],
    pred: Optional[PredRef],
    planner: PredPlanner,
    out: List[Tuple[Node, Optional[PredRef]]],
    pairs: List[int],
) -> None:
    for region in regions:
        if isinstance(region, BlockRegion):
            for node in region.node_list:
                out.append((node, pred))
        elif isinstance(region, SeqRegion):
            _flatten(region.items, pred, planner, out, pairs)
        elif isinstance(region, IfRegion):
            if not region.is_speculatable():
                raise SchedulingError(
                    "internal: non-speculatable if inside a superblock"
                )
            pair = planner.plan_condition(region.cond, pred)
            pairs.append(pair)
            for node in region.cond_block.node_list:
                out.append((node, pred))
            _flatten([region.then_body], PredRef(pair, True), planner, out, pairs)
            _flatten([region.else_body], PredRef(pair, False), planner, out, pairs)
        else:
            raise SchedulingError(
                f"internal: {type(region).__name__} inside a superblock"
            )


def build_superblock(
    regions: Sequence[Region],
    outer_pred: Optional[PredRef],
    planner: PredPlanner,
) -> Superblock:
    """Flatten ``regions`` (blocks + speculatable ifs) into a superblock."""
    flat: List[Tuple[Node, Optional[PredRef]]] = []
    pairs: List[int] = []
    _flatten(regions, outer_pred, planner, flat, pairs)

    # -- cross-block hazards (uniform recomputation over the flat order) --
    extra_deps: Dict[int, Set[int]] = {node.id: set() for node, _ in flat}
    last_write: Dict[Var, Node] = {}
    reads_since: Dict[Var, List[Node]] = {}
    last_store: Dict[ArrayRef, Node] = {}
    loads_since: Dict[ArrayRef, List[Node]] = {}
    for node, _ in flat:
        deps = extra_deps[node.id]
        if node.opcode == "VARREAD":
            var = node.var
            if var in last_write:
                deps.add(last_write[var].id)
            reads_since.setdefault(var, []).append(node)
        elif node.opcode == "VARWRITE":
            var = node.var
            if var in last_write:
                deps.add(last_write[var].id)
            for r in reads_since.get(var, ()):
                if r is not node.operands[0]:
                    deps.add(r.id)
            last_write[var] = node
            reads_since[var] = []
        elif node.opcode == "DMA_LOAD":
            arr = node.array
            if arr in last_store:
                deps.add(last_store[arr].id)
            loads_since.setdefault(arr, []).append(node)
        elif node.opcode == "DMA_STORE":
            arr = node.array
            if arr in last_store:
                deps.add(last_store[arr].id)
            for ld in loads_since.get(arr, ()):
                deps.add(ld.id)
            last_store[arr] = node
            loads_since[arr] = []
        for d in node.deps:
            deps.add(d.id)

    member: Dict[int, Tuple[Node, Optional[PredRef]]] = {
        node.id: (node, pred) for node, pred in flat
    }

    # -- VARREAD / CONST elision -------------------------------------------
    # consumers of each read node, and the read's own deps to transfer
    read_nodes = {n.id: n for n, _ in flat if n.opcode == "VARREAD"}
    const_nodes = {n.id: n for n, _ in flat if n.opcode == "CONST"}
    read_consumers: Dict[int, List[int]] = {rid: [] for rid in read_nodes}

    items: Dict[int, SBItem] = {}
    order: List[int] = []
    for node, pred in flat:
        if node.id in read_nodes or node.id in const_nodes:
            continue
        operands: List[OperandSpec] = []
        deps = set(extra_deps[node.id])
        for op in node.operands:
            if op.id in read_nodes:
                operands.append(OperandSpec.of_var(op.var))  # type: ignore[arg-type]
                read_consumers[op.id].append(node.id)
                deps |= extra_deps[op.id]  # transfer the read's RAW dep
            elif op.id in const_nodes:
                operands.append(OperandSpec.of_const(op.value))  # type: ignore[arg-type]
            else:
                operands.append(OperandSpec.of_node(op))
        item = SBItem(node=node, pred=pred, operands=operands, deps=deps)
        items[node.id] = item
        order.append(node.id)

    # rewrite deps that point at elided reads/consts
    for item in items.values():
        new_deps: Set[int] = set()
        for dep in item.deps:
            if dep in read_nodes:
                # WAR: wait for the read's consumers instead
                for consumer in read_consumers[dep]:
                    if consumer != item.key:
                        new_deps.add(consumer)
            elif dep in const_nodes:
                continue
            elif dep in items or dep == item.key:
                if dep != item.key:
                    new_deps.add(dep)
            # deps outside the superblock were satisfied by region order
        item.deps = new_deps

    # -- pWRITE fusing (Section V-E) ---------------------------------------
    consumer_count: Dict[int, int] = {}
    for item in items.values():
        for op in item.operands:
            if op.kind == "node":
                consumer_count[op.node.id] = consumer_count.get(op.node.id, 0) + 1

    fused: Dict[int, int] = {}  # write node id -> producer node id
    for key in list(order):
        item = items.get(key)
        if item is None or item.opcode != "VARWRITE":
            continue
        src_spec = item.operands[0]
        if src_spec.kind != "node":
            continue  # var-to-var move or constant write: keep as op
        src = src_spec.node
        if src.id not in items:
            continue
        if consumer_count.get(src.id, 0) != 1:
            continue
        src_item = items[src.id]
        if src_item.dest_var is not None:
            continue
        if src_item.pred != item.pred:
            # "if any control flow predecessor inhibits fusing, a pWRITE
            # is not fused" — differing predicates would change semantics
            continue
        if src_item.opcode in ("DMA_STORE",):
            continue
        src_item.dest_var = item.node.var
        src_item.fused_write = item.node
        src_item.deps |= {d for d in item.deps if d != src.id}
        fused[item.key] = src.id
        del items[item.key]
        order.remove(item.key)

    # unfused VARWRITE items carry their own variable
    for item in items.values():
        if item.opcode == "VARWRITE":
            item.dest_var = item.node.var

    # Deps referencing a fused write are kept as-is: the scheduler marks
    # the write id done when the fusion commits, or schedules it as its
    # own item when fusing fails on placement (dynamic unfuse) — so
    # readers always wait for the *actual* home update.  Deps referencing
    # ids that are neither items nor fused writes (elided dead reads,
    # consts) are dropped.
    for item in items.values():
        item.deps = {
            d
            for d in item.deps
            if d != item.key and (d in items or d in fused)
        }

    # -- condition steps ------------------------------------------------------
    for item in items.values():
        step = planner.step_for(item.node)
        if step is not None:
            item.cond_step = step

    # condition chains evaluate in order: each non-first step must wait
    # for the previous leaf's combine (enforced at placement through
    # pair_ready, plus an explicit dep for list-scheduling sanity)
    _add_chain_deps(items, planner)

    sb = Superblock(items=items, order=order, pairs=pairs, fused_writes=fused)
    _compute_priorities(sb)
    return sb


def _add_chain_deps(items: Dict[int, SBItem], planner: PredPlanner) -> None:
    by_pair: Dict[int, int] = {}
    for item in items.values():
        if item.cond_step is not None:
            by_pair[item.cond_step.write_pair] = item.key
    for item in items.values():
        step = item.cond_step
        if step is not None and step.read is not None:
            prev = by_pair.get(step.read.pair)
            if prev is not None and prev != item.key:
                item.deps.add(prev)


def _compute_priorities(sb: Superblock) -> None:
    """Longest-path priorities over the item graph (Section V-F)."""
    from repro.arch.operations import default_costs

    succs: Dict[int, List[int]] = {k: [] for k in sb.items}
    indeg: Dict[int, int] = {k: 0 for k in sb.items}

    def preds_of(item: SBItem) -> Set[int]:
        preds = set()
        for dep in item.deps:
            # deps may reference a fused write; for graph purposes the
            # producer stands in (scheduling resolves the real timing)
            while dep in sb.fused_writes:
                dep = sb.fused_writes[dep]
            if dep in sb.items:
                preds.add(dep)
        for op in item.operands:
            if op.kind == "node" and op.node.id in sb.items:
                preds.add(op.node.id)
        preds.discard(item.key)
        return preds

    for item in sb.items.values():
        for p in preds_of(item):
            succs[p].append(item.key)
            indeg[item.key] += 1

    ready = [k for k, d in indeg.items() if d == 0]
    topo: List[int] = []
    while ready:
        k = ready.pop()
        topo.append(k)
        for s in succs[k]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(topo) != len(sb.items):
        raise SchedulingError("dependence cycle inside a superblock")
    sb.succs = succs

    def duration(item: SBItem) -> int:
        if item.opcode == "VARWRITE":
            return 1
        return default_costs(item.opcode).duration

    weight: Dict[int, int] = {}
    for k in reversed(topo):
        item = sb.items[k]
        best = 0
        for s in succs[k]:
            best = max(best, weight[s])
        weight[k] = duration(item) + best
        item.priority = weight[k]
