"""Iterative modulo scheduling for innermost loops (software pipelining).

The list strategy realises a loop as ``[header | guard] [body | back
branch]`` and executes iterations back-to-back, paying the header span
and two branch cycles every iteration.  This module software-pipelines
eligible loops via *loop rotation*:

* **prologue** — the header superblock evaluates the condition for
  iteration 0; a conditional guard branch skips the whole loop when it
  is false (zero-trip counts never enter the kernel).
* **steady-state kernel** — ONE superblock merging the body of
  iteration *k* with the header of iteration *k+1*, closed by a
  conditional back branch taken while the (freshly combined) condition
  holds.  Header and body operations overlap freely inside the span,
  and the guard + back branch collapse into a single branch cycle per
  iteration.
* **epilogue** — empty: the rotated pipeline has a single stage, so the
  exit falls straight through the back branch.

Rotation also removes all speculation from the kernel: entering the
span *implies* the previous condition check passed, so body effects
need no predication and no squash handling.

The initiation interval is searched upward from
``MII = max(ResMII, RecMII)`` (Rau's iterative modulo scheduling):
each candidate II bounds placement with a deadline of ``II`` cycles;
a failed attempt rolls the region back
(:class:`repro.sched.state.SchedCheckpoint`) and retries with II+1.
Infeasible loops (or, in ``auto`` mode, loops where no II beats the
list realisation's iteration span) fall back to the list strategy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.ccu import BranchKind
from repro.ir.cdfg import Kernel
from repro.ir.regions import (
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    UnsupportedConditionError,
)
from repro.sched.schedule import (
    LoopSpan,
    ModuloLoopInfo,
    PlannedBranch,
    PredRef,
    SchedulingError,
)
from repro.sched.state import SchedCheckpoint
from repro.sched.strategy import (
    LIST_STRATEGY,
    SchedulingStrategy,
    spec_compatible,
)
from repro.sched.superblock import Superblock, build_superblock

__all__ = [
    "ModuloInfeasible",
    "ModuloStrategy",
    "modulo_eligibility",
    "compute_mii",
]

#: II values tried beyond MII before declaring the loop infeasible
MAX_II_ATTEMPTS = 48


class ModuloInfeasible(SchedulingError):
    """No feasible II found; the caller falls back to the list strategy."""


# ---------------------------------------------------------------------------
# eligibility
# ---------------------------------------------------------------------------


def modulo_eligibility(
    loop: LoopRegion, *, speculate: bool = True
) -> Optional[str]:
    """``None`` if ``loop`` can be software-pipelined, else the reason.

    Pipelineable loops are *innermost* (no nested loops), have a
    side-effect-free header with a C-Box-evaluable condition, and a body
    whose leaf regions form one superblock: blocks, plus speculatable
    ifs when speculation is enabled.  Everything else — data-dependent
    inner loops, loop-carrying ifs — keeps the list realisation.
    """
    for node in loop.header.node_list:
        if node.opcode in ("VARWRITE", "DMA_STORE"):
            return "header-side-effects"
    try:
        loop.cond.linearize()
    except UnsupportedConditionError:
        return "unsupported-condition"
    from repro.sched.scheduler import RegionScheduler

    for item in RegionScheduler._leaf_regions(loop.body):
        if isinstance(item, BlockRegion):
            continue
        if isinstance(item, LoopRegion):
            return "nested-loop"
        if isinstance(item, IfRegion):
            if not speculate:
                return "speculation-disabled"
            if not spec_compatible(item, under_pred=False):
                return "non-speculatable-if"
            continue
        return f"unsupported-region-{type(item).__name__}"
    return None


# ---------------------------------------------------------------------------
# MII = max(ResMII, RecMII)
# ---------------------------------------------------------------------------


def _min_duration(sched, opcode: str, pes: Tuple[int, ...]) -> int:
    exec_opcode = "MOVE" if opcode == "VARWRITE" else opcode
    return min(sched.comp.pes[pe].duration(exec_opcode) for pe in pes)


def _issue_weight(sched, opcode: str, pes: Tuple[int, ...]) -> int:
    """Cycles one op of ``opcode`` occupies its cheapest eligible PE."""
    exec_opcode = "MOVE" if opcode == "VARWRITE" else opcode
    best = None
    for pe in pes:
        desc = sched.comp.pes[pe]
        w = 1 if desc.pipelined else desc.duration(exec_opcode)
        best = w if best is None else min(best, w)
    return best if best is not None else 1


def compute_mii(sched, sb: Superblock) -> Tuple[int, int]:
    """(ResMII, RecMII) lower bounds for one kernel-span superblock.

    ResMII: per-opcode-class issue pressure over the eligible PEs (an
    op on a non-pipelined PE occupies it for its duration), total items
    over the fabric width, and one C-Box combine per cycle.  RecMII:
    for every loop-carried variable (read and written inside the span)
    the cycle ``read@k -> ... -> write@k``/``write@k -> read@k+1``
    forces ``II >= longest read-to-write path latency``.  Both are
    conservative *lower* bounds — the achieved II is whatever bounded
    placement first succeeds at.
    """
    comp = sched.comp
    demand: Dict[str, int] = {}
    eligible: Dict[str, int] = {}
    combines = 0
    for item in sb.items.values():
        pes = sched._pe_base_list(item.opcode)
        if not pes:
            raise SchedulingError(
                f"no PE of {comp.name} can execute {item.opcode}"
            )
        demand[item.opcode] = demand.get(item.opcode, 0) + _issue_weight(
            sched, item.opcode, pes
        )
        eligible[item.opcode] = len(pes)
        if item.cond_step is not None:
            combines += 1
    res_mii = 1
    for opcode, need in demand.items():
        res_mii = max(res_mii, -(-need // eligible[opcode]))
    res_mii = max(res_mii, -(-len(sb.items) // comp.n_pes), combines)

    # -- RecMII over loop-carried variable recurrences ---------------------
    durations = {
        key: _min_duration(sched, item.opcode, sched._pe_base_list(item.opcode))
        for key, item in sb.items.items()
    }
    preds: Dict[int, List[int]] = {k: [] for k in sb.items}
    for k, succs in sb.succs.items():
        for s in succs:
            preds[s].append(k)
    topo: List[int] = []
    indeg = {k: len(preds[k]) for k in sb.items}
    ready = [k for k, d in indeg.items() if d == 0]
    while ready:
        k = ready.pop()
        topo.append(k)
        for s in sb.succs.get(k, ()):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)

    readers: Dict[object, List[int]] = {}
    writers: Dict[object, List[int]] = {}
    for key, item in sb.items.items():
        if item.dest_var is not None:
            writers.setdefault(item.dest_var, []).append(key)
        for spec in item.operands:
            if spec.kind == "var":
                readers.setdefault(spec.var, []).append(key)

    rec_mii = 1
    for var, writer_keys in writers.items():
        reader_keys = readers.get(var)
        if not reader_keys:
            continue
        # longest path latency from any reader of var to each node
        lp: Dict[int, int] = {}
        sources = set(reader_keys)
        for k in topo:
            best = durations[k] if k in sources else None
            for p in preds[k]:
                if p in lp:
                    cand = lp[p] + durations[k]
                    best = cand if best is None else max(best, cand)
            if best is not None:
                lp[k] = best
        for w in writer_keys:
            if w in lp:
                rec_mii = max(rec_mii, lp[w])
    return res_mii, rec_mii


# ---------------------------------------------------------------------------
# the strategy
# ---------------------------------------------------------------------------


class ModuloStrategy(SchedulingStrategy):
    """Software-pipeline one loop; falls back to the list strategy."""

    name = "modulo"

    def schedule_loop(self, sched, loop: LoopRegion) -> None:
        metrics = sched.obs_metrics
        entry = SchedCheckpoint(sched)
        max_ii: Optional[int] = None
        if sched.scheduler_mode == "auto":
            # auto keeps the rotated form only when its II strictly
            # beats the list realisation's iteration span: with equal
            # prologues, that makes auto at least as good as list for
            # every trip count.
            LIST_STRATEGY.schedule_loop(sched, loop)
            span = sched.loop_spans[-1]
            max_ii = span.end - span.start  # list span length - 1
            entry.rollback(sched)
        try:
            info = self._pipeline_loop(sched, loop, max_ii=max_ii)
        except SchedulingError as exc:
            if metrics.enabled:
                metrics.inc("sched.modulo.fallback")
            if sched.obs_tracer.enabled:
                sched.obs_tracer.event("sched.modulo.fallback", reason=str(exc))
            entry.rollback(sched)
            LIST_STRATEGY.schedule_loop(sched, loop)
            return
        if metrics.enabled:
            metrics.inc("sched.modulo.loops")
            metrics.inc("sched.modulo.attempts", info.attempts)
            metrics.observe("sched.modulo.ii", info.ii)

    def _pipeline_loop(
        self, sched, loop: LoopRegion, *, max_ii: Optional[int]
    ) -> ModuloLoopInfo:
        reason = modulo_eligibility(loop, speculate=sched.speculate)
        if reason is not None:
            raise ModuloInfeasible(f"loop not pipelineable: {reason}")
        written = Kernel.written_vars(loop)
        sched.vars.invalidate_copies(sorted(written, key=lambda v: v.name))

        # -- prologue: header for iteration 0 + zero-trip guard -----------
        prologue_start = sched.frontier
        pair = sched.planner.plan_condition(loop.cond, None)
        sched._sched_superblock([loop.header], None)
        _, exit_label = sched._emit_cond_exit_branch(pair)

        var_snap = sched.vars.snapshot()
        const_snap = sched.consts.snapshot()
        # copies of loop-written variables made while scheduling the
        # prologue go stale on the back edge exactly like pre-loop ones
        sched.vars.invalidate_copies(sorted(written, key=lambda v: v.name))

        from repro.sched.scheduler import RegionScheduler

        span_regions: List[Region] = list(
            RegionScheduler._leaf_regions(loop.body)
        ) + [loop.header]

        # -- MII from a throwaway superblock build (rolled back: the
        # build registers body-if condition pairs with the planner) ------
        checkpoint = SchedCheckpoint(sched)
        span_start = sched.frontier
        sb0 = build_superblock(span_regions, None, sched.planner)
        res_mii, rec_mii = compute_mii(sched, sb0)
        checkpoint.rollback(sched)
        mii = max(res_mii, rec_mii)

        cap = mii + MAX_II_ATTEMPTS
        if max_ii is not None:
            cap = min(cap, max_ii)
        if cap < mii:
            raise ModuloInfeasible(
                f"II budget {cap} below MII {mii} "
                f"(ResMII {res_mii}, RecMII {rec_mii})"
            )

        # -- iterative II search with backtracking placement ---------------
        attempts = 0
        back_cycle: Optional[int] = None
        for ii in range(mii, cap + 1):
            attempts += 1
            try:
                back_cycle = self._attempt_span(
                    sched, span_regions, pair, span_start, ii
                )
                break
            except SchedulingError:
                checkpoint.rollback(sched)
        if back_cycle is None:
            raise ModuloInfeasible(
                f"no feasible II in [{mii}, {cap}] for loop kernel span"
            )
        achieved = back_cycle - span_start + 1

        sched.frontier = back_cycle + 1
        sched._bind(exit_label, sched.frontier)
        sched.loop_spans.append(LoopSpan(span_start, back_cycle))
        info = ModuloLoopInfo(
            prologue_start=prologue_start,
            kernel_start=span_start,
            kernel_end=back_cycle,
            ii=achieved,
            res_mii=res_mii,
            rec_mii=rec_mii,
            attempts=attempts,
        )
        sched.modulo_loops.append(info)

        # -- post-loop state: the guard may skip the kernel entirely ------
        other_vars = sched.vars.restore(var_snap)
        sched.vars.merge(other_vars)
        sched.vars.merge(var_snap)
        other_consts = sched.consts.restore(const_snap)
        sched.consts.merge(other_consts)
        return info

    def _attempt_span(
        self,
        sched,
        span_regions: List[Region],
        pair: int,
        span_start: int,
        ii: int,
    ) -> int:
        """One bounded placement attempt; returns the back-branch cycle."""
        deadline = span_start + ii - 1
        sched._deadline = deadline
        try:
            sched._sched_superblock(span_regions, None)
        finally:
            sched._deadline = None
        back_cycle = sched._branch_cycle()
        if back_cycle > deadline:
            raise SchedulingError(
                f"kernel span needs more than II={ii} cycles"
            )
        combine = sched.planner.combined_at.get(pair)
        if combine is None:  # pragma: no cover - structural
            raise SchedulingError("loop condition never combined in span")
        if back_cycle == combine:
            sel: object = "fresh_pos"
        else:
            sel = PredRef(pair, True)
            if not sched.planner.read_allowed(PredRef(pair, True), back_cycle):
                raise SchedulingError(
                    "back branch before its condition is stored"
                )
        sched.res.cbox_outctrl[back_cycle] = sel
        sched.res.branches[back_cycle] = PlannedBranch(
            back_cycle, BranchKind.CONDITIONAL, target=span_start
        )
        sched._bound_targets.add(span_start)
        return back_cycle
