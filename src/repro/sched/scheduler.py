"""The region-driven list scheduler (Section V, Algorithm 1).

The paper's Algorithm 1 is a time-stepped list scheduler: per time step
the candidate nodes (all predecessors handled) are visited in priority
order (longest path weight); each candidate tries the PEs in attraction
order and is placed on the first compatible, non-busy PE whose operands
can be made accessible — copying values across the interconnect when
needed, "before the current time step if it is possible".

The *check loop compatibility* step of Algorithm 1 demands that nodes of
an inner loop only start once every predecessor of every node in that
loop has finished, and that nodes of the outer loop run either before or
after the inner loop (Section V-C).  We realise exactly this constraint
set by walking the region tree: maximal runs of blocks and loop-free
if/else regions form *superblocks* that are list-scheduled as one DAG
(with both if-paths speculated and pWRITEs predicated, Section V-B),
while loops and loop-carrying ifs become context regions delimited by
CCU branches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.arch.composition import Composition
from repro.ir.cdfg import Kernel
from repro.ir.nodes import Node, Var
from repro.ir.regions import (
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from repro.obs import get_metrics, get_tracer
from repro.sched.predication import PredPlanner
from repro.sched.routing import AccessPlan, Router
from repro.sched.schedule import (
    LoopSpan,
    ModuloLoopInfo,
    OperandSource,
    PlacedOp,
    PlannedBranch,
    PlannedCBoxOp,
    PredRef,
    Schedule,
    SchedulingError,
    ValueKind,
)
from repro.sched.state import (
    ConstTracker,
    ResourceState,
    Txn,
    ValueTable,
    VarTracker,
)
from repro.sched.strategy import (
    DEFAULT_SCHEDULER_MODE,
    RegionPlan,
    analyze_regions,
    spec_compatible,
    strategy_for,
    validate_scheduler_mode,
)
from repro.sched.superblock import OperandSpec, SBItem, Superblock, build_superblock
from repro.arch.ccu import BranchKind

__all__ = ["RegionScheduler", "schedule_kernel"]

#: opcodes whose effects must be predicated under speculation
_PREDICATED_EFFECTS = ("VARWRITE", "DMA_LOAD", "DMA_STORE")


class _Label:
    """Forward branch target, patched once the cycle is known."""

    def __init__(self) -> None:
        self.cycle: Optional[int] = None
        self.pending: List[PlannedBranch] = []

    def bind(self, cycle: int) -> None:
        self.cycle = cycle
        for br in self.pending:
            br.target = cycle

    def attach(self, branch: PlannedBranch) -> None:
        if self.cycle is not None:
            branch.target = self.cycle
        else:
            self.pending.append(branch)


class RegionScheduler:
    def __init__(
        self,
        kernel: Kernel,
        comp: Composition,
        *,
        enforce_context_size: bool = True,
        max_stall: int = 2000,
        use_attraction: bool = True,
        speculate: bool = True,
        scheduler_mode: str = DEFAULT_SCHEDULER_MODE,
        region_plan: Optional[RegionPlan] = None,
    ) -> None:
        """Map ``kernel`` onto ``comp``.

        ``use_attraction`` / ``speculate`` exist for ablation studies:
        disabling attraction falls back to connectivity-ordered PE
        selection; disabling speculation realises *every* if/else with
        real CCNT branches instead of predicated execution.

        ``scheduler_mode`` selects the per-region loop strategy
        (``list`` / ``modulo`` / ``auto``, see repro.sched.strategy);
        ``region_plan`` injects a precomputed region-analysis result
        (the pipeline's pass 1) and defaults to analysing here.
        """
        kernel.validate()
        validate_scheduler_mode(scheduler_mode)
        missing = comp.validate_for_kernel_ops(kernel.used_alu_opcodes())
        if missing:
            raise SchedulingError(
                f"composition {comp.name} supports no PE for: {missing}"
            )
        self.kernel = kernel
        self.comp = comp
        self.enforce_context_size = enforce_context_size
        self.max_stall = max_stall
        self.use_attraction = use_attraction
        self.speculate = speculate
        self.scheduler_mode = scheduler_mode
        #: pass-1 result: which strategy realises each loop region
        self.region_plan = (
            region_plan
            if region_plan is not None
            else analyze_regions(kernel, mode=scheduler_mode, speculate=speculate)
        )

        #: observability hooks captured at construction; both default to
        #: inert no-ops (see repro.obs), so the hot path pays ~nothing
        self.obs_tracer = get_tracer()
        self.obs_metrics = get_metrics()

        self.values = ValueTable()
        self.res = ResourceState(comp.n_pes)
        self.vars = VarTracker(self.values)
        self.consts = ConstTracker(self.values)
        self.planner = PredPlanner()
        self.router = Router(comp, self.values, lambda: self._region_start)

        self.frontier = 0
        self._region_start = 0
        #: cycles some emitted branch jumps to; a region-end branch must
        #: not be placed *before* such a cycle (jumpers would skip it)
        self._bound_targets: set = set()
        self.loop_spans: List[LoopSpan] = []
        self.modulo_loops: List[ModuloLoopInfo] = []
        #: bounded placement (modulo II search): no item may finish past
        #: this cycle; None disables the bound (list scheduling)
        self._deadline: Optional[int] = None
        #: node value locations: node id -> [(pe, vid, ready)]
        self.node_locs: Dict[int, List[Tuple[int, int, int]]] = {}
        #: attraction criterion (Section V-G): (item key, pe) -> score
        self.attraction: Dict[Tuple[int, int], int] = {}
        self._pending_unfused: List[Tuple[int, SBItem]] = []
        #: opcode -> eligible-PE base list (support + DMA filters are
        #: static per composition; only the attraction re-sort changes
        #: between placement attempts).  Pre-sorted in connectivity
        #: order, the attraction-free tie-break.
        self._pe_base: Dict[str, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(self) -> Schedule:
        with self.obs_tracer.span(
            "sched.kernel",
            kernel=self.kernel.name,
            composition=self.comp.name,
        ):
            schedule = self._run()
        metrics = self.obs_metrics
        if metrics.enabled:
            metrics.inc("sched.kernels")
            metrics.inc("sched.ops.placed", len(schedule.ops))
            metrics.inc("sched.loop.spans", len(schedule.loop_spans))
            metrics.inc("sched.pred.pairs", schedule.n_pred_pairs)
            metrics.observe("sched.schedule.cycles", schedule.n_cycles)
        return schedule

    def _run(self) -> Schedule:
        self._sched_seq(self.kernel.body, None)
        # ensure every interface variable is homed (unused params/results)
        rr = 0
        for var in list(self.kernel.params) + list(self.kernel.results):
            st = self.vars.state(var)
            if st.home_pe is None:
                self.vars.assign_home(var, rr % self.comp.n_pes)
                rr += 1
        # live-in values are present from cycle 0; live-outs are read at
        # the end of the run
        for var in self.kernel.params:
            vid = self.vars.state(var).home_vid
            assert vid is not None
            self.values.note_def(vid, 0)
        halt_cycle = self.frontier
        for var in self.kernel.results:
            vid = self.vars.state(var).home_vid
            assert vid is not None
            self.values.note_use(vid, halt_cycle)
        self.res.branches[halt_cycle] = PlannedBranch(halt_cycle, BranchKind.HALT)
        n_cycles = halt_cycle + 1

        if self.enforce_context_size and n_cycles > self.comp.context_size:
            raise SchedulingError(
                f"schedule needs {n_cycles} contexts but composition "
                f"{self.comp.name} has {self.comp.context_size}"
            )

        cbox = self._merge_cbox_plans()
        schedule = Schedule(
            kernel_name=self.kernel.name,
            composition_name=self.comp.name,
            n_cycles=n_cycles,
            ops=sorted(self.res.ops, key=lambda o: (o.cycle, o.pe)),
            cbox=cbox,
            branches=dict(self.res.branches),
            values=self.values.all(),
            var_homes={
                var: st.home_vid
                for var, st in self.vars.all_vars()
                if st.home_vid is not None
            },
            outport_bookings=dict(self.res.outports),
            loop_spans=list(self.loop_spans),
            n_pred_pairs=self.planner.n_pairs,
            modulo_loops=list(self.modulo_loops),
        )
        schedule.validate(self.comp)
        return schedule

    def _merge_cbox_plans(self) -> Dict[int, PlannedCBoxOp]:
        cbox = dict(self.res.cbox_combine)
        for cycle, pred in self.res.cbox_outpe.items():
            entry = cbox.setdefault(cycle, PlannedCBoxOp(cycle=cycle))
            entry.out_pe = pred
        for cycle, sel in self.res.cbox_outctrl.items():
            entry = cbox.setdefault(cycle, PlannedCBoxOp(cycle=cycle))
            entry.out_ctrl = sel
        return cbox

    # ------------------------------------------------------------------
    # region walking
    # ------------------------------------------------------------------

    @staticmethod
    def _leaf_regions(seq: SeqRegion):
        """Iterate non-Seq children, flattening nested sequences."""
        for item in seq.items:
            if isinstance(item, SeqRegion):
                yield from RegionScheduler._leaf_regions(item)
            else:
                yield item

    def _sched_seq(self, seq: SeqRegion, pred: Optional[PredRef]) -> None:
        run: List[Region] = []

        def flush() -> None:
            if run:
                self._sched_superblock(list(run), pred)
                run.clear()

        for item in self._leaf_regions(seq):
            if isinstance(item, BlockRegion):
                run.append(item)
            elif (
                isinstance(item, IfRegion)
                and self.speculate
                and self._spec_compatible(item, under_pred=pred is not None)
            ):
                run.append(item)
            elif isinstance(item, IfRegion):
                flush()
                if pred is not None:  # pragma: no cover - structural
                    raise SchedulingError(
                        "loop-carrying if under a speculation predicate"
                    )
                self._sched_if_real(item)
            elif isinstance(item, LoopRegion):
                flush()
                if pred is not None:  # pragma: no cover - structural
                    raise SchedulingError("loop under a speculation predicate")
                self._sched_loop(item)
            else:  # pragma: no cover - future region kinds
                raise SchedulingError(f"unknown region {type(item).__name__}")
        flush()

    def _spec_compatible(self, region: IfRegion, *, under_pred: bool) -> bool:
        """Can this if/else be speculated (Section V-B)?

        Delegates to :func:`repro.sched.strategy.spec_compatible`, which
        region analysis shares for modulo-eligibility checks.
        """
        return spec_compatible(region, under_pred=under_pred)

    def _sched_loop(self, loop: LoopRegion) -> None:
        """Realise one loop through its region-analysis strategy.

        Pass 1 (repro.sched.strategy.analyze_regions) decided per loop
        whether the list or the modulo strategy applies; a modulo
        attempt that fails during placement rolls back and re-runs the
        loop with the list strategy, so kernels never regress.
        """
        decision = self.region_plan.decision_for(loop)
        strategy_for(decision).schedule_loop(self, loop)

    def _sched_if_real(self, region: IfRegion) -> None:
        pair = self.planner.plan_condition(region.cond, None)
        self._sched_superblock([region.cond_block], None)
        else_branch, else_label = self._emit_cond_exit_branch(pair)

        var_snap = self.vars.snapshot()
        const_snap = self.consts.snapshot()

        self._sched_seq(region.then_body, None)
        end_cycle_br = self._branch_cycle()
        end_branch = PlannedBranch(end_cycle_br, BranchKind.UNCONDITIONAL)
        end_label = _Label()
        end_label.attach(end_branch)
        self.res.branches[end_cycle_br] = end_branch
        self.frontier = end_cycle_br + 1
        self._bind(else_label, self.frontier)

        then_vars = self.vars.restore(var_snap)
        then_consts = self.consts.restore(const_snap)

        self._sched_seq(region.else_body, None)
        self._bind(end_label, self.frontier)

        self.vars.merge(then_vars)
        self.consts.merge(then_consts)

    def _emit_cond_exit_branch(self, pair: int) -> Tuple[PlannedBranch, _Label]:
        """Branch taken when the condition is FALSE, after its combine."""
        combine = self.planner.combined_at.get(pair)
        if combine is None:  # pragma: no cover - structural
            raise SchedulingError("condition was never combined")
        cycle = self._branch_cycle()
        if cycle == combine:
            sel: Union[PredRef, str] = "fresh_neg"
        else:
            sel = PredRef(pair, False)
            if not self.planner.read_allowed(PredRef(pair, False), cycle):
                raise SchedulingError("branch before its condition is stored")
        self.res.cbox_outctrl[cycle] = sel
        label = _Label()
        branch = PlannedBranch(cycle, BranchKind.CONDITIONAL)
        label.attach(branch)
        self.res.branches[cycle] = branch
        self.frontier = cycle + 1
        return branch, label

    def _bind(self, label: "_Label", cycle: int) -> None:
        label.bind(cycle)
        self._bound_targets.add(cycle)

    def _branch_cycle(self) -> int:
        """Last cycle of the current region if branch-free, else a new one.

        Sharing the final cycle is illegal when some inner branch
        already targets ``frontier`` ("after this region"): a branch at
        ``frontier - 1`` would be skipped by those jumpers.
        """
        candidate = max(self.frontier - 1, 0)
        if (
            self.frontier > 0
            and self.frontier not in self._bound_targets
            and candidate not in self.res.branches
            and candidate not in self.res.cbox_outctrl
            and candidate >= self._region_start
        ):
            return candidate
        return self.frontier

    # ------------------------------------------------------------------
    # superblock list scheduling (Algorithm 1)
    # ------------------------------------------------------------------

    def _sched_superblock(
        self, regions: Sequence[Region], pred: Optional[PredRef]
    ) -> None:
        sb = build_superblock(regions, pred, self.planner)
        if not sb.items:
            return
        with self.obs_tracer.span(
            "sched.superblock", start=self.frontier, items=len(sb.items)
        ) as sb_span:
            self._sched_superblock_items(sb, sb_span)

    def _sched_superblock_items(self, sb: Superblock, sb_span) -> None:
        if self.obs_metrics.enabled:
            self.obs_metrics.inc("sched.superblocks")
            self.obs_metrics.inc("sched.superblock.items", len(sb.items))
        self._region_start = start = self.frontier
        self.node_locs = {}
        self._pending_unfused: List[Tuple[int, SBItem]] = []
        self._fused_done: List[int] = []

        remaining: Dict[int, SBItem] = dict(sb.items)
        done: Dict[int, int] = {}  # item key -> final cycle
        max_cycle = start - 1
        t = start
        stall = 0

        while remaining:
            if self._deadline is not None and t > self._deadline:
                raise SchedulingError(
                    f"deadline {self._deadline} exceeded with items "
                    f"{sorted(remaining)} unplaced"
                )
            candidates = [
                item
                for item in remaining.values()
                if all(d in done and done[d] < t for d in self._preds(item, sb))
            ]
            candidates.sort(key=lambda it: (-it.priority, it.key))
            placed_any = False
            for item in candidates:
                placed = self._try_place(item, t, sb)
                if placed is None:
                    continue
                del remaining[item.key]
                done[item.key] = placed.final_cycle
                # a committed fusion also completes the absorbed pWRITE
                for wkey in self._fused_done:
                    done[wkey] = placed.final_cycle
                self._fused_done.clear()
                max_cycle = max(max_cycle, placed.final_cycle)
                self._update_attraction(item, placed.pe, sb)
                placed_any = True
            # dynamically unfused pWRITEs re-enter the candidate pool
            for key, unfused in self._pending_unfused:
                remaining[key] = unfused
            self._pending_unfused.clear()
            if not placed_any and self.obs_metrics.enabled:
                self.obs_metrics.inc("sched.stall.steps")
            stall = 0 if placed_any else stall + 1
            if stall > self.max_stall:
                blocked = sorted(remaining)
                if self.obs_tracer.enabled:
                    self.obs_tracer.event(
                        "sched.stall.abort", cycle=t, blocked=blocked
                    )
                raise SchedulingError(
                    f"scheduler stalled at cycle {t} with items {blocked} "
                    f"unplaceable on {self.comp.name} (unreachable values "
                    "or insufficient resources)"
                )
            t += 1

        self.frontier = max(max_cycle + 1, start)
        sb_span.set(end=self.frontier)

    def _preds(self, item: SBItem, sb: Superblock) -> Set[int]:
        preds = set(item.deps)
        for op in item.operands:
            if op.kind == "node" and op.node.id in sb.items:
                preds.add(op.node.id)
        preds.discard(item.key)
        return preds

    def _update_attraction(self, item: SBItem, pe: int, sb: Superblock) -> None:
        """Section V-G: successors are attracted to PEs that can access
        the result's register file — the PE itself and its readers."""
        accessors = (pe,) + self.comp.interconnect.sinks_of(pe)
        for succ in sb.succs.get(item.key, ()):
            for p in accessors:
                key = (succ, p)
                self.attraction[key] = self.attraction.get(key, 0) + 1

    # -- PE ordering ------------------------------------------------------

    def _pe_base_list(self, item_opcode: str) -> Tuple[int, ...]:
        """Eligible PEs for an opcode, in connectivity order (cached).

        The support and DMA filters depend only on the composition, so
        the base list is computed once per opcode; ``_pe_order`` then
        only applies the per-item work (home filter, attraction sort).
        """
        base = self._pe_base.get(item_opcode)
        if base is None:
            exec_opcode = "MOVE" if item_opcode == "VARWRITE" else item_opcode
            pes = [
                pe
                for pe in range(self.comp.n_pes)
                if self.comp.pes[pe].supports(exec_opcode)
            ]
            if item_opcode in ("DMA_LOAD", "DMA_STORE"):
                pes = [pe for pe in pes if self.comp.pes[pe].has_dma]
            icn = self.comp.interconnect
            pes.sort(key=lambda pe: (-icn.degree(pe), pe))
            base = self._pe_base[item_opcode] = tuple(pes)
        return base

    def _pe_order(self, item: SBItem) -> List[int]:
        pes = list(self._pe_base_list(item.opcode))
        if item.opcode == "VARWRITE":
            # unfused pWRITE "must ultimately be done on its assigned PE"
            home = self.vars.state(item.dest_var).home_pe  # type: ignore[arg-type]
            if home is not None:
                pes = [pe for pe in pes if pe == home]
        if not pes:
            raise SchedulingError(
                f"no PE of {self.comp.name} can execute {item.opcode}"
            )
        if self.use_attraction:
            # the base list is already in connectivity order, the exact
            # tie-break of the full key, so the stable sort only has to
            # consult the attraction scores
            attraction = self.attraction
            key = item.key
            pes.sort(key=lambda pe: -attraction.get((key, pe), 0))
        # else: ablation keeps the connectivity order of the base list
        # fused pWRITE: prefer the variable's home so fusing succeeds
        if item.fused_write is not None and item.dest_var is not None:
            home = self.vars.state(item.dest_var).home_pe
            if home is not None and home in pes:
                pes.remove(home)
                pes.insert(0, home)
        return pes

    # -- placement ----------------------------------------------------------

    def _try_place(
        self, item: SBItem, t: int, sb: Superblock
    ) -> Optional[PlacedOp]:
        metrics = self.obs_metrics
        for pe in self._pe_order(item):
            if metrics.enabled:
                metrics.inc("sched.placement.attempts")
            op = self._try_place_on(item, pe, t, sb)
            if op is not None:
                if metrics.enabled:
                    metrics.inc("sched.placement.accepted")
                if self.obs_tracer.enabled:
                    self.obs_tracer.event(
                        "sched.place.accept",
                        node=item.key,
                        opcode=item.opcode,
                        pe=pe,
                        cycle=t,
                        final=op.final_cycle,
                    )
                return op
        return None

    def _reject(self, reason: str, item: SBItem, pe: int, t: int) -> None:
        """Record one per-PE placement rejection; always returns None."""
        if self.obs_metrics.enabled:
            self.obs_metrics.inc("sched.placement.rejected", reason=reason)
        if self.obs_tracer.enabled:
            self.obs_tracer.event(
                "sched.place.reject",
                node=item.key,
                opcode=item.opcode,
                pe=pe,
                cycle=t,
                reason=reason,
            )
        return None

    def _try_place_on(
        self, item: SBItem, pe: int, t: int, sb: Superblock
    ) -> Optional[PlacedOp]:
        pe_desc = self.comp.pes[pe]
        exec_opcode = "MOVE" if item.opcode == "VARWRITE" else item.opcode
        duration = pe_desc.duration(exec_opcode)
        final = t + duration - 1
        if self._deadline is not None and final > self._deadline:
            return self._reject("deadline", item, pe, t)

        txn = Txn(self.res)
        if pe_desc.pipelined:
            # pipelined PE: only the issue slot and the finish slot
            # (single write port) are exclusive
            if not txn.pe_free(pe, t, 1) or not txn.finish_free(pe, final):
                return self._reject("pe_busy", item, pe, t)
        elif not txn.pe_free(pe, t, duration):
            return self._reject("pe_busy", item, pe, t)

        # --- condition combine feasibility
        step = item.cond_step
        if step is not None:
            if final in self.res.cbox_combine:
                return self._reject("cbox_combine_busy", item, pe, t)
            if step.read is not None and not self.planner.read_allowed(
                step.read, final
            ):
                return self._reject("cond_read_order", item, pe, t)

        # --- home bookkeeping for the written variable
        pending_home: Optional[Tuple[Var, int]] = None
        home_vid: Optional[int] = None
        dest_var = item.dest_var
        if dest_var is not None:
            st = self.vars.state(dest_var)
            if st.home_pe is None:
                if item.opcode == "VARWRITE" or item.fused_write is not None:
                    pending_home = (dest_var, pe)
            elif item.fused_write is not None and st.home_pe != pe:
                # fusing failed on this PE: schedule the producer plainly
                # and let a separate pWRITE follow (dynamic unfuse)
                dest_var = None
            elif item.opcode == "VARWRITE" and st.home_pe != pe:
                return self._reject("home_mismatch", item, pe, t)
            if dest_var is not None and st.home_vid is not None:
                home_vid = st.home_vid

        # --- predication feasibility
        write_predicated = item.pred is not None and (
            dest_var is not None or item.opcode in _PREDICATED_EFFECTS
        )
        if write_predicated:
            if not self.planner.read_allowed(item.pred, final):  # type: ignore[arg-type]
                return self._reject("pred_not_readable", item, pe, t)
            booked = self.res.cbox_outpe.get(final)
            if booked is not None and booked != item.pred:
                return self._reject("pred_broadcast_conflict", item, pe, t)

        # --- operands
        srcs: List[OperandSource] = []
        pending_copy_regs: List[Tuple[str, object, int, int, int]] = []
        pending_home_reads: Dict[Var, int] = {}
        for spec in item.operands:
            plan = self._plan_operand(txn, spec, pe, t, pending_home_reads)
            if plan is None:
                return self._reject("operand_unroutable", item, pe, t)
            access, copy_regs = plan
            srcs.append(access.source)
            for booking in access.port_bookings:
                txn.book_outport(*booking)
            pending_copy_regs.extend(copy_regs)
            txn.value_uses.append((access.source.vid, t))

        # --- destination value
        dest_vid: Optional[int] = None
        immediate: Optional[int] = None
        if item.opcode == "DMA_STORE":
            dest_vid = None
        elif dest_var is not None:
            if pending_home is not None:
                if dest_var in pending_home_reads:
                    # the operand pass just homed this variable here (a
                    # read-and-write first touch, e.g. "v = v + 1"):
                    # write into that same home entry
                    dest_vid = pending_home_reads[dest_var]
                    pending_home = None
                else:
                    # mint the home value now; registered on commit
                    dest_vid = self.values.new(ValueKind.HOME, pe, dest_var)
            else:
                if home_vid is None:  # pragma: no cover - defensive
                    raise SchedulingError("homed variable without a vid")
                dest_vid = home_vid
        elif item.node.produces_value or item.opcode == "DMA_LOAD":
            dest_vid = self.values.new(ValueKind.NODE, pe, item.node)
        if item.node.array is not None:
            immediate = item.node.array.handle

        predicate = item.pred if write_predicated else None
        op = PlacedOp(
            cycle=t,
            pe=pe,
            opcode=exec_opcode,
            duration=duration,
            srcs=tuple(srcs),
            dest_vid=dest_vid,
            immediate=immediate,
            array=item.node.array,
            predicate=predicate,
            node=item.node,
            issue_only=pe_desc.pipelined,
        )
        txn.add_op(op)
        if dest_vid is not None:
            txn.value_defs.append((dest_vid, final))

        # ---- commit ------------------------------------------------------
        txn.commit()
        if self.obs_metrics.enabled or self.obs_tracer.enabled:
            self._note_committed(op, txn)
        for vid, cycle in txn.value_defs:
            self.values.note_def(vid, cycle)
        for vid, cycle in txn.value_uses:
            self.values.note_use(vid, cycle)
        for kind, origin, vid, hpe, ready in pending_copy_regs:
            if kind == "var":
                self.vars.add_copy(origin, hpe, vid, ready)  # type: ignore[arg-type]
            elif kind == "const":
                self.consts.register(hpe, origin, vid, ready)  # type: ignore[arg-type]
            else:  # node
                self.node_locs.setdefault(origin.id, []).append(  # type: ignore[union-attr]
                    (hpe, vid, ready)
                )
        for var, home_pe in [pending_home] if pending_home else []:
            st = self.vars.state(var)
            st.home_pe = home_pe
            st.home_vid = dest_vid
        for var, vid in pending_home_reads.items():
            st = self.vars.state(var)
            st.home_pe = self.values.info(vid).pe
            st.home_vid = vid
            self.values.note_def(vid, 0)

        if predicate is not None:
            self.res.cbox_outpe[final] = predicate
        if step is not None:
            plan = PlannedCBoxOp(
                cycle=final,
                status_pe=pe,
                func=step.func,
                read=step.read,
                write_pair=step.write_pair,
                swap_writes=step.swap_writes,
            )
            self.res.cbox_combine[final] = plan
            self.planner.note_combined(step.write_pair, final)

        if dest_var is not None and dest_vid is not None:
            self.vars.note_write(dest_var, final + 1)
            st = self.vars.state(dest_var)
            st.home_ready = max(st.home_ready, final + 1)
        elif dest_vid is not None:
            self.node_locs.setdefault(item.node.id, []).append(
                (pe, dest_vid, final + 1)
            )

        # fusion bookkeeping: either the absorbed pWRITE completed with
        # this op, or it re-enters the pool as its own item (the
        # producer landed off-home: dynamic unfuse)
        if item.fused_write is not None:
            write_node = item.fused_write
            if dest_var is not None:
                if self.obs_metrics.enabled:
                    self.obs_metrics.inc("sched.pwrite.fused")
                self._fused_done.append(write_node.id)
            else:
                if self.obs_metrics.enabled:
                    self.obs_metrics.inc("sched.pwrite.unfused")
                unfused = SBItem(
                    node=write_node,
                    pred=item.pred,
                    operands=[OperandSpec.of_node(item.node)],
                    deps={item.key},
                    dest_var=write_node.var,
                )
                unfused.priority = item.priority
                sb.items[write_node.id] = unfused
                self._readd_unfused(write_node.id, unfused)

        return op

    def _readd_unfused(self, key: int, item: SBItem) -> None:
        """Hook point used by _sched_superblock's remaining map."""
        self._pending_unfused.append((key, item))

    def _note_committed(self, op: PlacedOp, txn: Txn) -> None:
        """Account the auxiliary operations committed alongside ``op``:
        copy-chain MOVEs (Floyd-path routing) and retroactive CONST
        materialisations.  Counted here — not at plan time — so the
        numbers reflect only placements that actually succeeded."""
        metrics, tracer = self.obs_metrics, self.obs_tracer
        for aux in txn.ops:
            if aux is op:
                continue
            if aux.opcode == "MOVE":
                if metrics.enabled:
                    metrics.inc("route.copies.inserted")
                if tracer.enabled:
                    src = aux.srcs[0].pe if aux.srcs else None
                    tracer.event(
                        "route.copy", from_pe=src, to_pe=aux.pe, cycle=aux.cycle
                    )
            elif aux.opcode == "CONST":
                if metrics.enabled:
                    metrics.inc("sched.const.materialised")
                if tracer.enabled:
                    tracer.event(
                        "sched.const",
                        pe=aux.pe,
                        cycle=aux.cycle,
                        value=aux.immediate,
                    )

    # -- operand planning -----------------------------------------------------

    def _plan_operand(
        self,
        txn: Txn,
        spec: OperandSpec,
        pe: int,
        t: int,
        pending_home_reads: Dict[Var, int],
    ) -> Optional[Tuple[AccessPlan, List[Tuple[str, object, int, int, int]]]]:
        if spec.kind == "node":
            holders = self.node_locs.get(spec.node.id)
            if not holders:
                raise SchedulingError(
                    f"operand {spec.node!r} has no scheduled producer"
                )
            plan = self.router.plan_access(
                txn, pe, t, holders, ValueKind.COPY, spec.node
            )
            if plan is None:
                return None
            regs = [("node", spec.node, vid, hpe, ready) for vid, hpe, ready in plan.new_copies]
            return plan, regs

        if spec.kind == "var":
            var = spec.var
            st = self.vars.state(var)
            if st.home_pe is None:
                # first touch is a read: home the variable here
                # (Section V-D first-consumer heuristic)
                if var in pending_home_reads:
                    vid = pending_home_reads[var]
                    home_pe = self.values.info(vid).pe
                    plan = self.router.plan_access(
                        txn, pe, t, [(home_pe, vid, 0)], ValueKind.COPY, var
                    )
                    if plan is None:
                        return None
                    regs = [("var", var, vid2, hpe, ready) for vid2, hpe, ready in plan.new_copies]
                    return plan, regs
                vid = self.values.new(ValueKind.HOME, pe, var)
                pending_home_reads[var] = vid
                return AccessPlan(OperandSource(pe, vid), [], [], []), []
            holders = [(st.home_pe, st.home_vid, st.home_ready)]
            holders.extend(self.vars.valid_copies(var))
            plan = self.router.plan_access(
                txn, pe, t, holders, ValueKind.COPY, var
            )
            if plan is None:
                return None
            regs = [("var", var, vid, hpe, ready) for vid, hpe, ready in plan.new_copies]
            return plan, regs

        # constant
        const = spec.const
        assert const is not None
        local = self.consts.lookup(pe, const)
        if local is not None and local[1] <= t:
            return AccessPlan(OperandSource(pe, local[0]), [], [], []), []
        holders = self.consts.holders(const)
        # neighbour port read
        for hpe, vid, ready in holders:
            if (
                ready <= t
                and self.comp.interconnect.has_link(hpe, pe)
                and txn.outport_compatible(hpe, t, vid)
            ):
                txn.book_outport(hpe, t, vid)
                return (
                    AccessPlan(OperandSource(hpe, vid), [(hpe, t, vid)], [], []),
                    [],
                )
        # retroactive local materialisation (a CONST context entry)
        cycle = self._find_free_cycle(txn, pe, self._region_start, t - 1)
        if cycle is not None:
            duration = self.comp.pes[pe].duration("CONST")
            if cycle + duration - 1 <= t - 1:
                vid = self.values.new(ValueKind.CONST, pe, const)
                cop = PlacedOp(
                    cycle=cycle,
                    pe=pe,
                    opcode="CONST",
                    duration=duration,
                    dest_vid=vid,
                    immediate=const,
                    issue_only=self.comp.pes[pe].pipelined,
                )
                txn.add_op(cop)
                txn.value_defs.append((vid, cycle + duration - 1))
                return (
                    AccessPlan(OperandSource(pe, vid), [], [cop], []),
                    [("const", const, vid, pe, cycle + duration)],
                )
        # copy chain from a remote holder
        if holders:
            plan = self.router.plan_access(
                txn, pe, t, holders, ValueKind.CONST, const
            )
            if plan is not None:
                regs = [
                    ("const", const, vid, hpe, ready)
                    for vid, hpe, ready in plan.new_copies
                ]
                return plan, regs
        return None

    def _find_free_cycle(
        self, txn: Txn, pe: int, earliest: int, latest: int
    ) -> Optional[int]:
        duration = self.comp.pes[pe].duration("CONST")
        pipelined = self.comp.pes[pe].pipelined
        for c in range(earliest, latest + 1):
            if c + duration - 1 > latest:
                return None
            if pipelined:
                if txn.pe_free(pe, c, 1) and txn.finish_free(pe, c + duration - 1):
                    return c
            elif txn.pe_free(pe, c, duration):
                return c
        return None


def schedule_kernel(
    kernel: Kernel,
    comp: Composition,
    *,
    enforce_context_size: bool = True,
    use_attraction: bool = True,
    speculate: bool = True,
    scheduler_mode: str = DEFAULT_SCHEDULER_MODE,
) -> Schedule:
    """Schedule ``kernel`` onto ``comp`` and return the :class:`Schedule`."""
    return RegionScheduler(
        kernel,
        comp,
        enforce_context_size=enforce_context_size,
        use_attraction=use_attraction,
        speculate=speculate,
        scheduler_mode=scheduler_mode,
    ).run()
