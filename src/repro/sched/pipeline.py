"""The scheduler as an explicit pass pipeline.

Historically ``schedule_kernel`` + ``generate_contexts`` were two
monolithic calls.  This module names the stages in between so tools
can observe, replace, or stop after any of them:

1. **region-analysis** — walk the region tree and pick a
   :class:`~repro.sched.strategy.SchedulingStrategy` per loop
   (:func:`repro.sched.strategy.analyze_regions`);
2. **placement** — run the :class:`~repro.sched.scheduler.RegionScheduler`
   over the kernel, dispatching each loop through its strategy
   (list realisation or modulo software pipelining), producing a
   :class:`~repro.sched.schedule.Schedule`;
3. **regalloc** — left-edge allocation of RF entries and C-Box
   condition slots (:func:`repro.context.generator.allocate_contexts`);
4. **emission** — materialise per-cycle context words
   (:func:`repro.context.generator.emit_contexts`), including the
   always-on independent verification hook.

:func:`run_pipeline` is the one-call driver; ``schedule_kernel`` and
``generate_contexts`` remain as the stable two-call surface and are
implemented over the same passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.arch.composition import Composition
from repro.context.generator import (
    Allocation,
    allocate_contexts,
    emit_contexts,
)
from repro.context.words import ContextProgram
from repro.ir.cdfg import Kernel
from repro.sched.schedule import Schedule
from repro.sched.scheduler import RegionScheduler
from repro.sched.strategy import (
    DEFAULT_SCHEDULER_MODE,
    RegionPlan,
    analyze_regions,
    validate_scheduler_mode,
)

__all__ = [
    "PipelineContext",
    "SchedPass",
    "PASSES",
    "run_pipeline",
]


@dataclass
class PipelineContext:
    """Mutable state threaded through the passes.

    Each pass fills in its product; earlier products stay available so
    later passes (and post-run inspection) can read them.
    """

    kernel: Kernel
    comp: Composition
    # options
    scheduler_mode: str = DEFAULT_SCHEDULER_MODE
    enforce_context_size: bool = True
    use_attraction: bool = True
    speculate: bool = True
    # products
    region_plan: Optional[RegionPlan] = None
    schedule: Optional[Schedule] = None
    allocation: Optional[Allocation] = None
    program: Optional[ContextProgram] = None
    #: pass name -> product attribute it filled (run order preserved)
    completed: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class SchedPass:
    """One named pipeline stage."""

    name: str
    run: Callable[[PipelineContext], None]


def _pass_region_analysis(ctx: PipelineContext) -> None:
    validate_scheduler_mode(ctx.scheduler_mode)
    ctx.region_plan = analyze_regions(
        ctx.kernel, mode=ctx.scheduler_mode, speculate=ctx.speculate
    )


def _pass_placement(ctx: PipelineContext) -> None:
    assert ctx.region_plan is not None, "region-analysis must run first"
    ctx.schedule = RegionScheduler(
        ctx.kernel,
        ctx.comp,
        enforce_context_size=ctx.enforce_context_size,
        use_attraction=ctx.use_attraction,
        speculate=ctx.speculate,
        scheduler_mode=ctx.scheduler_mode,
        region_plan=ctx.region_plan,
    ).run()


def _pass_regalloc(ctx: PipelineContext) -> None:
    assert ctx.schedule is not None, "placement must run first"
    ctx.allocation = allocate_contexts(ctx.schedule, ctx.comp)


def _pass_emission(ctx: PipelineContext) -> None:
    assert ctx.schedule is not None and ctx.allocation is not None
    ctx.program = emit_contexts(
        ctx.schedule, ctx.comp, ctx.allocation, ctx.kernel
    )


#: the canonical pass order
PASSES: Sequence[SchedPass] = (
    SchedPass("region-analysis", _pass_region_analysis),
    SchedPass("placement", _pass_placement),
    SchedPass("regalloc", _pass_regalloc),
    SchedPass("emission", _pass_emission),
)

_PASS_INDEX: Dict[str, int] = {p.name: i for i, p in enumerate(PASSES)}


def run_pipeline(
    kernel: Kernel,
    comp: Composition,
    *,
    scheduler_mode: str = DEFAULT_SCHEDULER_MODE,
    enforce_context_size: bool = True,
    use_attraction: bool = True,
    speculate: bool = True,
    stop_after: Optional[str] = None,
) -> PipelineContext:
    """Run the pass pipeline, optionally stopping after a named pass.

    Returns the :class:`PipelineContext` with every product up to (and
    including) ``stop_after`` filled in; with the default ``None`` the
    context carries the final :class:`ContextProgram` in ``program``.
    """
    if stop_after is not None and stop_after not in _PASS_INDEX:
        raise ValueError(
            f"unknown pass {stop_after!r}; expected one of "
            f"{', '.join(_PASS_INDEX)}"
        )
    ctx = PipelineContext(
        kernel=kernel,
        comp=comp,
        scheduler_mode=scheduler_mode,
        enforce_context_size=enforce_context_size,
        use_attraction=use_attraction,
        speculate=speculate,
    )
    for p in PASSES:
        p.run(ctx)
        ctx.completed.append(p.name)
        if stop_after == p.name:
            break
    return ctx
