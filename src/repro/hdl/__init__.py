"""Verilog code generation (Section IV-B, Fig. 7).

"For irregular and inhomogeneous CGRAs one generic Verilog description
is unreasonable regarding complexity.  Therefore, we use a
code-generator."  Variable structures (PE, ALU, top level) are generated
per composition from templates; static structures (CCU, context memory,
RF, C-Box) are parameterised modules.
"""

from repro.hdl.generator import generate_verilog, write_verilog

__all__ = ["generate_verilog", "write_verilog"]
