"""Static Verilog module templates (Section IV-B).

"Secondly, there are static structures ... whose structural
implementation does not change for different compositions.  This applies
to the CCU, context memory, RF and the C-Box.  Structures like the
multiplexer ... can be adapted using parameters, wherefore no template
is needed."  These are parameterised Verilog modules emitted verbatim.
"""

REGISTER_FILE = """\
// Register file with one write port, two ALU read ports, one out-port
// read port{extra_port_comment} (Fig. 3).  Predicated writes gate the
// write enable with the C-Box predication broadcast (Section IV-A.2).
module register_file #(
    parameter ADDR_W = 7,
    parameter DEPTH  = 128
) (
    input  wire              clk,
    input  wire              we,
    input  wire              predicated,
    input  wire              pred_signal,
    input  wire [ADDR_W-1:0] waddr,
    input  wire [31:0]       wdata,
    input  wire [ADDR_W-1:0] raddr_a,
    output wire [31:0]       rdata_a,
    input  wire [ADDR_W-1:0] raddr_b,
    output wire [31:0]       rdata_b,
    input  wire [ADDR_W-1:0] raddr_out,
    output wire [31:0]       rdata_out{extra_port_decl}
);
    reg [31:0] mem [0:DEPTH-1];
    wire write_ok = we & (~predicated | pred_signal);
    always @(posedge clk) begin
        if (write_ok) mem[waddr] <= wdata;
    end
    assign rdata_a   = mem[raddr_a];
    assign rdata_b   = mem[raddr_b];
    assign rdata_out = mem[raddr_out];{extra_port_assign}
endmodule
"""

CONTEXT_MEMORY = """\
// Context memory: one entry per CCNT value, drives all control signals
// of its owner (Fig. 2).  Width is the bit-mask-compressed context word.
module context_memory #(
    parameter WIDTH  = 64,
    parameter DEPTH  = 256,
    parameter ADDR_W = 8
) (
    input  wire              clk,
    input  wire              wen,
    input  wire [ADDR_W-1:0] waddr,
    input  wire [WIDTH-1:0]  wdata,
    input  wire [ADDR_W-1:0] ccnt,
    output reg  [WIDTH-1:0]  context_word
);
    reg [WIDTH-1:0] mem [0:DEPTH-1];
    always @(posedge clk) begin
        if (wen) mem[waddr] <= wdata;
        context_word <= mem[ccnt];
    end
endmodule
"""

CCU = """\
// Context control unit: increments the CCNT, executes conditional and
// unconditional branches and locks on the final context (Section
// IV-A.2, Fig. 5).
module ccu #(
    parameter ADDR_W = 8
) (
    input  wire              clk,
    input  wire              rst,
    input  wire              start,
    input  wire [ADDR_W-1:0] start_ccnt,
    input  wire              branch_cond,
    input  wire              branch_uncond,
    input  wire              halt,
    input  wire [ADDR_W-1:0] branch_target,
    input  wire              branch_sel,   // outctrl from the C-Box
    output reg  [ADDR_W-1:0] ccnt,
    output reg               locked
);
    always @(posedge clk) begin
        if (rst) begin
            ccnt   <= {{ADDR_W{{1'b0}}}};
            locked <= 1'b1;
        end else if (start) begin
            ccnt   <= start_ccnt;
            locked <= 1'b0;
        end else if (!locked) begin
            if (halt)
                locked <= 1'b1;
            else if (branch_uncond)
                ccnt <= branch_target;
            else if (branch_cond && branch_sel)
                ccnt <= branch_target;
            else
                ccnt <= ccnt + 1'b1;
        end
    end
endmodule
"""

CBOX = """\
// Condition box: stores truth values in the condition memory, combines
// one incoming status with one stored pair per cycle and drives the
// predication (outPE) and branch-selection (outctrl) signals (Fig. 4).
module cbox #(
    parameter N_STATUS = 4,
    parameter SLOT_W   = 5,
    parameter SLOTS    = 32
) (
    input  wire                clk,
    input  wire                rst,
    input  wire [N_STATUS-1:0] status,
    input  wire [$clog2(N_STATUS)-1:0] status_sel,
    input  wire [2:0]          func,        // store/and/or/... encoding
    input  wire                combine_en,
    input  wire [SLOT_W-1:0]   raddr_pos,
    input  wire [SLOT_W-1:0]   raddr_neg,
    input  wire [SLOT_W-1:0]   waddr_pos,
    input  wire [SLOT_W-1:0]   waddr_neg,
    input  wire [SLOT_W-1:0]   outpe_sel,
    input  wire                outpe_fresh,
    input  wire [SLOT_W-1:0]   outctrl_sel,
    input  wire                outctrl_fresh,
    input  wire                outctrl_fresh_neg,
    output wire                out_pe,
    output wire                out_ctrl
);
    reg [SLOTS-1:0] mem;
    wire s  = status[status_sel];
    wire rp = mem[raddr_pos];
    wire rn = mem[raddr_neg];
    reg pos, neg;
    always @(*) begin
        case (func)
            3'd0: begin pos = s;        neg = ~s;       end // STORE
            3'd1: begin pos = ~s;       neg = s;        end // STORE_NOT
            3'd2: begin pos = rp & s;   neg = rn | ~s;  end // AND
            3'd3: begin pos = rp | s;   neg = rn & ~s;  end // OR
            3'd4: begin pos = rp & ~s;  neg = rn | s;   end // AND_NOT
            3'd5: begin pos = rp | ~s;  neg = rn & s;   end // OR_NOT
            3'd6: begin pos = rp & s;   neg = rp & ~s;  end // FORK_AND
            default: begin pos = 1'b0;  neg = 1'b0;     end
        endcase
    end
    always @(posedge clk) begin
        if (rst)
            mem <= {{SLOTS{{1'b0}}}};
        else if (combine_en) begin
            mem[waddr_pos] <= pos;
            mem[waddr_neg] <= neg;
        end
    end
    assign out_pe   = outpe_fresh   ? pos : mem[outpe_sel];
    assign out_ctrl = outctrl_fresh ? pos :
                      outctrl_fresh_neg ? neg : mem[outctrl_sel];
endmodule
"""

DMA_EXTRA_PORT_COMMENT = " and a third read port for the\n// access index (DMA PEs, Section IV-A.1)"
DMA_EXTRA_PORT_DECL = """,
    input  wire [ADDR_W-1:0] raddr_idx,
    output wire [31:0]       rdata_idx"""
DMA_EXTRA_PORT_ASSIGN = "\n    assign rdata_idx = mem[raddr_idx];"
