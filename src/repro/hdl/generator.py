"""Per-composition Verilog generation (Fig. 7).

"Firstly, there are variable structures.  These refer to the modules PE,
ALU and the top level module.  Their implementation needs to be adapted
with regard to the given composition.  For instance, each operation is
realized separately in the ALU."  Those modules are generated here; the
static modules come from :mod:`repro.hdl.templates`.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List

from repro.arch.composition import Composition
from repro.context.bitmask import pe_context_width
from repro.hdl import templates

__all__ = ["generate_verilog", "write_verilog"]

#: RTL expression for each operation, over operands ``a`` and ``b``.
_OP_RTL = {
    "IADD": "a + b",
    "ISUB": "a - b",
    "IMUL": "a * b",
    "INEG": "-a",
    "IMIN": "($signed(a) < $signed(b)) ? a : b",
    "IMAX": "($signed(a) > $signed(b)) ? a : b",
    "IABS": "($signed(a) < 0) ? -a : a",
    "IAND": "a & b",
    "IOR": "a | b",
    "IXOR": "a ^ b",
    "INOT": "~a",
    "ISHL": "a << b[4:0]",
    "ISHR": "$signed(a) >>> b[4:0]",
    "IUSHR": "a >> b[4:0]",
    "IFEQ": "{31'b0, a == b}",
    "IFNE": "{31'b0, a != b}",
    "IFLT": "{31'b0, $signed(a) < $signed(b)}",
    "IFLE": "{31'b0, $signed(a) <= $signed(b)}",
    "IFGT": "{31'b0, $signed(a) > $signed(b)}",
    "IFGE": "{31'b0, $signed(a) >= $signed(b)}",
    "MOVE": "a",
    "CONST": "imm",
    "DMA_LOAD": "dma_rdata",
    "DMA_STORE": "32'b0",
    "NOP": "32'b0",
}


def _bits(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def _alu_module(comp: Composition, pe: int) -> str:
    desc = comp.pes[pe]
    ops = sorted(desc.ops)
    op_bits = _bits(len(ops))
    cases = []
    for code, op in enumerate(ops):
        cases.append(
            f"            {op_bits}'d{code}: result = {_OP_RTL[op]}; // {op}"
        )
    case_body = "\n".join(cases)
    status_ops = [op for op in ops if op.startswith("IF")]
    status_codes = ", ".join(
        f"{op_bits}'d{ops.index(op)}" for op in status_ops
    )
    status_expr = (
        f"(opcode == {status_codes.replace(', ', f') | (opcode == ')}) ? result[0] : 1'b0"
        if status_ops
        else "1'b0"
    )
    return f"""\
// ALU of PE {pe} ('{desc.name}') — only its {len(ops)} supported
// operations are instantiated (inhomogeneous composition support,
// Section IV-B: "each operation is realized separately in the ALU").
module alu_pe{pe} (
    input  wire [{op_bits - 1}:0] opcode,
    input  wire [31:0] a,
    input  wire [31:0] b,
    input  wire [31:0] imm,
    input  wire [31:0] dma_rdata,
    output reg  [31:0] result,
    output wire        status
);
    always @(*) begin
        case (opcode)
{case_body}
            default: result = 32'b0;
        endcase
    end
    assign status = {status_expr};
endmodule
"""


def _pe_module(comp: Composition, pe: int) -> str:
    desc = comp.pes[pe]
    sources = comp.interconnect.sources_of(pe)
    n_in = len(sources)
    rf_bits = _bits(desc.regfile_size)
    in_ports = "".join(
        f"\n    input  wire [31:0] in_{i},  // from PE {src}"
        for i, src in enumerate(sources)
    )
    mux_items = (
        "\n".join(
            f"            {_bits(max(n_in, 2))}'d{i}: mux = in_{i};"
            for i in range(n_in)
        )
        if n_in
        else "            default: mux = 32'b0;"
    )
    sel_bits = _bits(max(n_in, 2))
    dma_ports = (
        """
    // DMA interface (Section IV-A.1)
    output wire        dma_req,
    output wire        dma_we,
    output wire [31:0] dma_handle,
    output wire [31:0] dma_index,
    output wire [31:0] dma_wdata,
    input  wire [31:0] dma_rdata,"""
        if desc.has_dma
        else """
    input  wire [31:0] dma_rdata,  // tied off: no DMA on this PE"""
    )
    return f"""\
// PE {pe} ('{desc.name}'): {n_in} interconnect inputs, RF depth
// {desc.regfile_size}{', DMA' if desc.has_dma else ''} (Fig. 3).
module pe{pe} (
    input  wire clk,
    input  wire rst,
    input  wire [CTX{pe}_W-1:0] context_word,
    input  wire pred_signal,{dma_ports}
    input  wire [31:0] livein,
    input  wire        livein_en,
    input  wire [{rf_bits - 1}:0] livein_addr,
    output wire [31:0] liveout,
    output wire [31:0] out,        // out_l to neighbouring PEs
    output wire        status,{in_ports}
    input  wire [{sel_bits - 1}:0] in_sel_a,
    input  wire [{sel_bits - 1}:0] in_sel_b
);
    // operand multiplexers over neighbour inputs (iterated from the
    // model's source list, Section IV-B)
    reg [31:0] mux;
    always @(*) begin
        case (in_sel_a)
{mux_items}
            default: mux = 32'b0;
        endcase
    end
    // register file, ALU and context decoding are wired here; the
    // context word is split according to the bit-mask encoding.
    wire [31:0] rf_a, rf_b, rf_out;
    wire [31:0] alu_result;
    alu_pe{pe} u_alu (
        .opcode (context_word[OPC{pe}_W-1:0]),
        .a      (rf_a),
        .b      (rf_b),
        .imm    (32'b0),
        .dma_rdata (dma_rdata),
        .result (alu_result),
        .status (status)
    );
    register_file #(.ADDR_W({rf_bits}), .DEPTH({desc.regfile_size})) u_rf (
        .clk (clk),
        .we (1'b1),
        .predicated (1'b0),
        .pred_signal (pred_signal),
        .waddr ({rf_bits}'b0),
        .wdata (livein_en ? livein : alu_result),
        .raddr_a ({rf_bits}'b0),
        .rdata_a (rf_a),
        .raddr_b ({rf_bits}'b0),
        .rdata_b (rf_b),
        .raddr_out ({rf_bits}'b0),
        .rdata_out (rf_out)
    );
    assign out = rf_out;
    assign liveout = rf_out;
endmodule
"""


def _top_module(comp: Composition) -> str:
    n = comp.n_pes
    wires = "\n".join(f"    wire [31:0] pe_out_{i};" for i in range(n))
    statuses = "\n".join(f"    wire status_{i};" for i in range(n))
    instances: List[str] = []
    for pe in range(n):
        sources = comp.interconnect.sources_of(pe)
        conns = "".join(
            f"\n        .in_{i} (pe_out_{src})," for i, src in enumerate(sources)
        )
        instances.append(
            f"""\
    pe{pe} u_pe{pe} (
        .clk (clk),
        .rst (rst),
        .context_word (ctx_{pe}),
        .pred_signal (out_pe),{conns}
        .status (status_{pe}),
        .out (pe_out_{pe}),
        .liveout (),
        .livein (livein),
        .livein_en (1'b0),
        .livein_addr ('0),
        .dma_rdata (32'b0),
        .in_sel_a ('0),
        .in_sel_b ('0)
    );"""
        )
    ctx_wires = "\n".join(
        f"    wire [{pe_context_width(comp, i) - 1}:0] ctx_{i};" for i in range(n)
    )
    status_vec = ", ".join(f"status_{i}" for i in reversed(range(n)))
    inst_body = "\n".join(instances)
    return f"""\
// Top level of composition '{comp.name}': {n} PEs,
// {comp.interconnect.edge_count()} interconnect links, context size
// {comp.context_size}, {comp.cbox_slots} C-Box slots (Fig. 2/5).
// The interconnect is realized as an array of wires; PE inputs are
// connected by iterating over the model's source lists (Section IV-B).
module cgra_top (
    input  wire clk,
    input  wire rst,
    input  wire start,
    input  wire [31:0] livein,
    output wire locked
);
{wires}
{statuses}
{ctx_wires}
    wire out_pe, out_ctrl;
    wire [{_bits(comp.context_size) - 1}:0] ccnt;

    ccu #(.ADDR_W({_bits(comp.context_size)})) u_ccu (
        .clk (clk), .rst (rst), .start (start),
        .start_ccnt ('0),
        .branch_cond (1'b0), .branch_uncond (1'b0), .halt (1'b0),
        .branch_target ('0),
        .branch_sel (out_ctrl),
        .ccnt (ccnt),
        .locked (locked)
    );

    cbox #(.N_STATUS({n}), .SLOT_W({_bits(comp.cbox_slots)}),
           .SLOTS({comp.cbox_slots})) u_cbox (
        .clk (clk), .rst (rst),
        .status ({{{status_vec}}}),
        .status_sel ('0), .func (3'd0), .combine_en (1'b0),
        .raddr_pos ('0), .raddr_neg ('0),
        .waddr_pos ('0), .waddr_neg ('0),
        .outpe_sel ('0), .outpe_fresh (1'b0),
        .outctrl_sel ('0), .outctrl_fresh (1'b0), .outctrl_fresh_neg (1'b0),
        .out_pe (out_pe), .out_ctrl (out_ctrl)
    );

{inst_body}
endmodule
"""


def generate_verilog(comp: Composition) -> Dict[str, str]:
    """Generate the full Verilog description of a composition.

    Returns a mapping file name -> Verilog text: the four static
    modules, one generated ALU + PE pair per processing element and the
    top-level module.
    """
    files: Dict[str, str] = {
        "register_file.v": templates.REGISTER_FILE.format(
            extra_port_comment="", extra_port_decl="", extra_port_assign=""
        ),
        "register_file_dma.v": templates.REGISTER_FILE.format(
            extra_port_comment=templates.DMA_EXTRA_PORT_COMMENT,
            extra_port_decl=templates.DMA_EXTRA_PORT_DECL,
            extra_port_assign=templates.DMA_EXTRA_PORT_ASSIGN,
        ).replace("module register_file ", "module register_file_dma "),
        "context_memory.v": templates.CONTEXT_MEMORY,
        "ccu.v": templates.CCU,
        "cbox.v": templates.CBOX,
    }
    for pe in range(comp.n_pes):
        files[f"alu_pe{pe}.v"] = _alu_module(comp, pe)
        files[f"pe{pe}.v"] = _pe_module(comp, pe)
    files["cgra_top.v"] = _top_module(comp)
    return files


def write_verilog(comp: Composition, directory: str) -> List[str]:
    """Write the generated description to ``directory``; returns paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, text in generate_verilog(comp).items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(path)
    return paths
