"""Listing 1 / Fig. 4 — C-Box evaluation of ``if (x || y)``.

The paper's worked example: path A executes under ``A = x ∨ y``, path B
under ``B = x̄ ∧ ȳ``; the evaluation takes two C-Box cycles (one status
per cycle).  We map exactly that kernel and verify both the schedule
structure (two combine cycles, OR chain) and the execution semantics on
all four input combinations.  The timed portion is the full pipeline of
the Listing-1 kernel.
"""

import pytest

from repro.arch.cbox import CBoxFunc
from repro.arch.library import mesh_composition
from repro.ir.builder import KernelBuilder
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel


def build_listing1_kernel():
    """if (x || y) r = 1 (path A) else r = 2 (path B)."""
    kb = KernelBuilder("listing1")
    x = kb.param("x")
    y = kb.param("y")
    r = kb.local("r")

    def cond():
        cx = kb.cmp("IFNE", kb.read(x), kb.const(0))
        cy = kb.cmp("IFNE", kb.read(y), kb.const(0))
        return kb.c_or(cx, cy)

    kb.if_(
        cond,
        lambda: kb.write(r, kb.const(1)),  # path A
        lambda: kb.write(r, kb.const(2)),  # path B
    )
    return kb.finish(results=[r])


def test_cbox_listing1(benchmark):
    kernel = build_listing1_kernel()
    comp = mesh_composition(4)

    def pipeline():
        return schedule_kernel(kernel, comp)

    schedule = benchmark(pipeline)

    combines = [p for p in schedule.cbox.values() if p.func is not None]
    funcs = sorted(p.func.name for p in combines)
    print(f"\nListing 1 C-Box plan: {funcs} over {len(combines)} cycles")
    # two cycles: STORE x, then OR with incoming y (Fig. 4)
    assert len(combines) == 2
    assert {p.func for p in combines} == {CBoxFunc.STORE, CBoxFunc.OR}
    assert combines[0].cycle != combines[1].cycle

    # execution truth table: path A iff x or y
    for x in (0, 1):
        for y in (0, 1):
            res = invoke_kernel(kernel, comp, {"x": x, "y": y})
            expected = 1 if (x or y) else 2
            assert res.results["r"] == expected, (x, y)
