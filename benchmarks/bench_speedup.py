"""Section VI-A headline — speedup over the AMIDAR baseline.

Paper: ADPCM decode takes 926 k cycles on AMIDAR; the best mesh (9 PEs,
126.6 k cycles) is 7.3x faster.  Our baseline is calibrated to the same
926 k; our CGRA cycle counts are lower than the paper's because our
CDFG nodes are coarser than Java bytecodes, which raises the measured
ratio (see EXPERIMENTS.md).  Shape assertions: the baseline lands on the
published number and every composition achieves a substantial speedup.

The timed portion is the baseline interpreter over the full stream.
"""

from repro.baseline import run_baseline
from repro.eval.tables import adpcm_workload, speedup_headline
from repro.kernels.adpcm import N_SAMPLES


def test_speedup_over_amidar(benchmark, mesh_runs):
    kernel, arrays, expect = adpcm_workload(unroll=1)

    def run_base():
        return run_baseline(
            kernel,
            {"n": N_SAMPLES, "gain": 4096},
            {k: list(v) for k, v in arrays.items()},
        )

    base = benchmark(run_base)
    assert base.heap.array(kernel.arrays[1].handle) == expect

    sp = speedup_headline(runs=mesh_runs)
    print(
        f"\nBaseline {sp.baseline_cycles} cycles (paper: 926k); best CGRA "
        f"{sp.best_label} at {sp.best_cycles} cycles -> {sp.speedup:.1f}x "
        "(paper: 7.3x at bytecode granularity)"
    )
    # calibration: the baseline reproduces the published cycle count
    assert 0.9e6 < sp.baseline_cycles < 1.0e6
    # every composition beats the baseline by a wide margin
    for label, run in mesh_runs.items():
        assert sp.baseline_cycles / run.cycles > 5, label
    assert sp.correct
