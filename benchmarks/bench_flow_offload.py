"""Extra bench — the Fig. 1/Fig. 6 offload flow end to end.

Not a table of the paper, but its central integration story: the
profiler detects a hot loop, the loop is mapped, and invocations forward
execution to the CGRA.  The bench measures the hybrid run and asserts
the accounting identity and a real speedup over the pure baseline.
"""

from repro.arch.library import mesh_composition
from repro.flow import accelerate
from repro.ir.frontend import IntArray, compile_kernel
from repro.sim.memory import Heap


def _kernel_source(n: int, data: IntArray) -> int:
    acc = 0
    i = 0
    while i < n:
        v = data[i]
        if v < 0:
            v = -v
        acc += v * 3 - (v & 7)
        i += 1
    final = acc ^ n
    return final


def test_flow_offload(benchmark):
    kernel = compile_kernel(_kernel_source, name="offload_demo")
    comp = mesh_composition(6)
    data = [((i * 37) % 101) - 50 for i in range(128)]

    executor, base, hybrid0 = accelerate(
        kernel, comp, {"n": 128}, {"data": data}, threshold=0.5
    )

    def run_hybrid():
        heap = Heap()
        heap.allocate(kernel.arrays[0].handle, list(data))
        return executor.run({"n": 128}, heap)

    hybrid = benchmark(run_hybrid)

    print(
        f"\nbaseline {base.host_cycles} cycles vs hybrid "
        f"{hybrid.total_cycles} (host {hybrid.host_cycles} + CGRA "
        f"{hybrid.cgra_cycles} + transfer {hybrid.transfer_cycles}) -> "
        f"{base.host_cycles / hybrid.total_cycles:.1f}x"
    )
    assert hybrid.results == base.results
    assert hybrid.invocations == 1
    assert (
        hybrid.total_cycles
        == hybrid.host_cycles + hybrid.cgra_cycles + hybrid.transfer_cycles
    )
    assert base.host_cycles / hybrid.total_cycles > 5
