"""Table II — execution cycles + synthesis estimates, all 12 compositions.

Paper shape targets (Section VI-B/C):

* every composition decodes the full stream correctly (mappability),
* among the irregular arrays, the sparse B is the slowest and the
  richly-clustered D the fastest,
* the inhomogeneous F matches D's cycle count within a small margin
  while using 75 % fewer DSPs,
* resource columns grow ~linearly with PE count and frequency falls.

The timed portion is the full 416-sample simulation on the 9-PE mesh.
"""

from repro.arch.library import mesh_composition
from repro.eval.report import render_table2
from repro.eval.tables import adpcm_workload
from repro.kernels.adpcm import N_SAMPLES
from repro.sim.invocation import invoke_kernel


def test_table2_execution_times(benchmark, table2_runs):
    kernel, arrays, expect = adpcm_workload()
    comp = mesh_composition(9)

    def simulate():
        return invoke_kernel(
            kernel,
            comp,
            {"n": N_SAMPLES, "gain": 4096},
            {k: list(v) for k, v in arrays.items()},
        )

    result = benchmark(simulate)
    assert result.run_cycles == table2_runs["9 PEs"].cycles

    print("\nTable II (regenerated)")
    print(render_table2(table2_runs))

    for label, run in table2_runs.items():
        assert run.correct, f"{label} decoded incorrectly"

    irr = {k.split()[-1]: v for k, v in table2_runs.items() if len(k.split()) == 3}
    # B worst, D best among the irregular compositions (paper Section VI-C)
    assert irr["B"].cycles == max(r.cycles for r in irr.values())
    assert irr["D"].cycles == min(r.cycles for r in irr.values())
    # F tracks D within 5 % while dropping 75 % of the DSPs
    assert abs(irr["F"].cycles - irr["D"].cycles) / irr["D"].cycles < 0.05
    assert irr["F"].dsp_pct < 0.3 * irr["D"].dsp_pct

    meshes = {k: v for k, v in table2_runs.items() if len(k.split()) == 2}
    freqs = [meshes[f"{n} PEs"].frequency_mhz for n in (4, 6, 8, 9, 12, 16)]
    assert freqs == sorted(freqs, reverse=True)
    luts = [meshes[f"{n} PEs"].lut_logic_pct for n in (4, 6, 8, 9, 12, 16)]
    assert luts == sorted(luts)
