"""Ablation — the attraction criterion (Section V-G).

"In order to sort PEs in a meaningful way, an attraction criterion is
introduced": successors are drawn towards PEs that can access their
operands' register files.  This ablation replaces attraction ordering
with plain connectivity ordering and measures the cycle cost over the
evaluation compositions — locality-blind placement forces extra copy
operations, most visibly on sparse interconnects.
"""

from repro.arch.library import irregular_composition, mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.kernels.adpcm import N_SAMPLES
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel


def _run(kernel, comp, arrays, *, use_attraction):
    schedule = schedule_kernel(kernel, comp, use_attraction=use_attraction)
    program = generate_contexts(schedule, comp, kernel)
    res = invoke_kernel(
        kernel,
        comp,
        {"n": N_SAMPLES, "gain": 4096},
        {k: list(v) for k, v in arrays.items()},
        program=program,
    )
    return res.run_cycles, sum(
        1 for op in schedule.ops if op.opcode == "MOVE" and op.node is None
    )


def test_ablation_attraction(benchmark):
    kernel, arrays, expect = adpcm_workload()
    comps = {
        "mesh9": mesh_composition(9),
        "irregularB": irregular_composition("B"),
    }

    def run_without_attraction():
        return {
            name: _run(kernel, comp, arrays, use_attraction=False)
            for name, comp in comps.items()
        }

    without = benchmark(run_without_attraction)
    with_attr = {
        name: _run(kernel, comp, arrays, use_attraction=True)
        for name, comp in comps.items()
    }

    print("\nattraction ablation (cycles, routing copies):")
    total_with = total_without = 0
    for name in comps:
        print(
            f"  {name}: with={with_attr[name]}  without={without[name]}"
        )
        total_with += with_attr[name][0]
        total_without += without[name][0]
    # Attraction is a greedy heuristic: it wins on some compositions and
    # loses slightly on others (our runs record both — see
    # EXPERIMENTS.md).  The guard below only rejects a systematic
    # regression: locality-aware ordering must stay within 10 % of the
    # locality-blind order overall.
    assert total_with <= total_without * 1.10
