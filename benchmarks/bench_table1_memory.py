"""Table I — memory utilisation of the ADPCM decoder schedules.

Paper row (416 samples, unroll 2):

    Used Contexts    200  191  189  175  173  168   (4..16 PEs)
    Max. RF entries   66   69   62   51   44   49

Our absolute numbers are smaller (our CDFG is leaner than Java
bytecode); the assertions target the reproducible structure: every mesh
fits the 256-entry context memory and the 128-entry RFs with room to
spare, and the benchmark regenerates both rows.  The timed portion is
schedule + context generation for the 9-PE mesh (the paper's best).
"""

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.report import render_table1
from repro.eval.tables import adpcm_workload
from repro.sched.scheduler import schedule_kernel


def test_table1_memory_utilisation(benchmark, mesh_runs):
    kernel, _, _ = adpcm_workload()
    comp = mesh_composition(9)

    def map_once():
        schedule = schedule_kernel(kernel, comp)
        return generate_contexts(schedule, comp, kernel)

    program = benchmark(map_once)

    print("\nTable I (regenerated)")
    print(render_table1(mesh_runs))

    for label, run in mesh_runs.items():
        assert run.correct, label
        # fits the paper's memory parameters
        assert run.used_contexts <= 256, label
        assert run.max_rf_entries <= 128, label
        # and would even fit the small RF-32 variant of Section VI-B
        assert run.max_rf_entries <= 32, label
    assert program.used_contexts == mesh_runs["9 PEs"].used_contexts
