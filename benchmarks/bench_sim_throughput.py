"""Simulator backends — three-way dynamic-cycle throughput comparison.

Each kernel is scheduled once; the resulting context program then runs
through the interpreter, the AOT-compiled executor and the batched
vector backend, and the dynamic-cycle throughput (simulated cycles per
wall-clock second) of each is recorded in ``extra_info``.  Two headline
assertions on the paper's evaluation kernel: the AOT-compiled executor
must simulate ADPCM at >= 3x the interpreter's throughput *including*
its one-off compile time (and that compile time must amortise within a
single Table II grid cell), and the vector backend must push a
64-invocation ADPCM batch at >= 5x the compiled backend's aggregate
throughput.  The batch sweep over {1, 8, 64} lanes lands in the
snapshot as the measured scaling curve.
"""

import time

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.kernels import crc32, dotp, gcd, sort
from repro.sched.scheduler import schedule_kernel
from repro.sim.compiled import compile_program
from repro.sim.invocation import invoke_kernel, run_invocations_batch
from repro.sim.memory import Heap

#: enough samples for the run to dominate scheduling noise, small
#: enough to keep the bench under a minute
_N_SAMPLES = 64

#: acceptance floor for the headline kernel (ISSUE: >= 3x on adpcm)
_MIN_ADPCM_SPEEDUP = 3.0

#: batch sizes swept by the vector-backend scaling benchmark
_BATCH_SIZES = (1, 8, 64)

#: acceptance floor: vector vs compiled aggregate throughput on the
#: 64-invocation adpcm batch
_MIN_VECTOR_BATCH_SPEEDUP = 5.0


def _workloads():
    xs, ys = dotp.sample_inputs(64)
    return {
        "gcd": (gcd.build_kernel(), {"a": 1, "b": 377}, {}),
        "dotp": (dotp.build_kernel(), {"n": 64}, {"xs": xs, "ys": ys}),
        "crc32": (
            crc32.build_kernel(),
            {"n": 16},
            {"data": [(i * 37) & 0xFF for i in range(16)]},
        ),
        "sort": (
            sort.build_kernel(),
            {"n": 24},
            {"data": [(i * 29) % 97 for i in range(24)]},
        ),
    }


def _run(kernel, comp, program, livein, arrays, backend, rounds=1):
    """Best-of-``rounds`` wall-clock of one invocation; (seconds, result).

    Best-of (not mean) so a scheduler hiccup in one round cannot sink
    the asserted speedup ratio on a loaded CI box.
    """
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        res = invoke_kernel(
            kernel,
            comp,
            dict(livein),
            {k: list(v) for k, v in arrays.items()},
            program=program,
            backend=backend,
        )
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, res


def test_adpcm_compiled_speedup(benchmark):
    """Headline: ADPCM (Table II workload) >= 3x, compile time included."""
    kernel, arrays, expect = adpcm_workload(_N_SAMPLES)
    comp = mesh_composition(9)
    schedule = schedule_kernel(kernel, comp)
    program = generate_contexts(schedule, comp, kernel)
    livein = {"n": _N_SAMPLES, "gain": 4096}

    interp_seconds, interp = _run(
        kernel, comp, program, livein, arrays, "interpreter", rounds=3
    )

    t0 = time.perf_counter()
    compile_program(program, comp)  # cold: populates the memo
    compile_seconds = time.perf_counter() - t0

    compiled_seconds, compiled = benchmark.pedantic(
        lambda: _run(
            kernel, comp, program, livein, arrays, "compiled", rounds=3
        ),
        rounds=1,
        iterations=1,
    )

    # both backends decode correctly and agree bit-for-bit
    assert compiled.heap.array(kernel.arrays[1].handle) == expect
    assert compiled.run_cycles == interp.run_cycles
    assert compiled.run.energy == interp.run.energy
    assert compiled.run.ops_executed == interp.run.ops_executed

    cycles = interp.run.cycles
    speedup = interp_seconds / (compiled_seconds + compile_seconds)
    benchmark.extra_info["sim_cycles"] = cycles
    benchmark.extra_info["interpreter_cycles_per_sec"] = round(
        cycles / interp_seconds
    )
    benchmark.extra_info["compiled_cycles_per_sec"] = round(
        cycles / compiled_seconds
    )
    benchmark.extra_info["compile_seconds"] = round(compile_seconds, 4)
    benchmark.extra_info["speedup_with_compile"] = round(speedup, 2)
    print(
        f"\nadpcm x{_N_SAMPLES}: {cycles} cycles — interpreter "
        f"{cycles / interp_seconds:,.0f} cyc/s, compiled "
        f"{cycles / compiled_seconds:,.0f} cyc/s, compile "
        f"{compile_seconds * 1e3:.1f} ms ({speedup:.2f}x incl. compile)"
    )
    assert speedup >= _MIN_ADPCM_SPEEDUP, (
        f"compiled backend only {speedup:.2f}x incl. compile time"
    )
    # amortisation: one Table II grid cell = compile once + run once;
    # the cell must already be ahead of the interpreter
    assert compile_seconds + compiled_seconds < interp_seconds


def test_adpcm_vector_batch_scaling(benchmark):
    """Vector backend: lockstep batches vs per-invocation compiled runs.

    Sweeps {1, 8, 64} lanes of the Table II ADPCM workload.  Every lane
    must be bit-equal to the compiled reference; the 64-lane batch must
    reach >= 5x the compiled backend's aggregate cycles/sec.  The full
    scaling curve is recorded in ``extra_info`` (the checked-in
    snapshot documents the measured batch-size headroom).
    """
    kernel, arrays, expect = adpcm_workload(_N_SAMPLES)
    comp = mesh_composition(9)
    schedule = schedule_kernel(kernel, comp)
    program = generate_contexts(schedule, comp, kernel)
    livein = {"n": _N_SAMPLES, "gain": 4096}
    by_name = {ref.name: ref.handle for ref in kernel.arrays}

    def mkheaps(n):
        heaps = []
        for _ in range(n):
            heap = Heap()
            for name, data in arrays.items():
                heap.allocate(by_name[name], list(data))
            heaps.append(heap)
        return heaps

    ref = invoke_kernel(
        kernel,
        comp,
        dict(livein),
        {k: list(v) for k, v in arrays.items()},
        program=program,
        backend="compiled",
    )
    assert ref.heap.array(by_name["outp"]) == expect
    # warm: compile + vectorize memos populated outside the timed runs
    run_invocations_batch(program, comp, [dict(livein)], mkheaps(1))

    rows = {}

    def measure():
        for batch in _BATCH_SIZES:
            liveins = [dict(livein) for _ in range(batch)]
            # the decoder rewrites every outp element, so reusing the
            # heaps across rounds keeps each round identical
            heaps = mkheaps(batch)
            vec_s = None
            for _ in range(3):
                t0 = time.perf_counter()
                out = run_invocations_batch(program, comp, liveins, heaps)
                elapsed = time.perf_counter() - t0
                vec_s = elapsed if vec_s is None else min(vec_s, elapsed)
            comp_s = None
            for _ in range(3):
                t0 = time.perf_counter()
                for i in range(batch):
                    run_invocations_batch(
                        program,
                        comp,
                        liveins[i : i + 1],
                        heaps[i : i + 1],
                        backend="compiled",
                    )
                elapsed = time.perf_counter() - t0
                comp_s = elapsed if comp_s is None else min(comp_s, elapsed)
            for lane, got in enumerate(out):
                assert got.results == ref.results, lane
                assert got.run.cycles == ref.run.cycles, lane
                assert got.run.energy == ref.run.energy, lane
                assert got.heap.array(by_name["outp"]) == expect, lane
            cycles = sum(r.run.cycles for r in out)
            rows[str(batch)] = {
                "sim_cycles": cycles,
                "vector_cycles_per_sec": round(cycles / vec_s),
                "compiled_cycles_per_sec": round(cycles / comp_s),
                "speedup": round(comp_s / vec_s, 2),
            }
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["batch_scaling"] = rows
    benchmark.extra_info["vector_batch64_speedup"] = rows["64"]["speedup"]
    for batch, row in rows.items():
        print(
            f"\nadpcm x{_N_SAMPLES} batch {batch}: vector "
            f"{row['vector_cycles_per_sec']:,} cyc/s, compiled "
            f"{row['compiled_cycles_per_sec']:,} cyc/s "
            f"({row['speedup']:.2f}x)"
        )
    assert rows["64"]["speedup"] >= _MIN_VECTOR_BATCH_SPEEDUP, (
        f"vector backend only {rows['64']['speedup']:.2f}x on the "
        f"64-invocation batch"
    )


def test_per_kernel_throughput(benchmark):
    """Record cycles/sec + speedup for the smaller kernels (no floor:
    short runs are compile-dominated; numbers land in the JSON)."""
    comp = mesh_composition(9)
    rows = {}

    def measure():
        for name, (kernel, livein, arrays) in _workloads().items():
            schedule = schedule_kernel(kernel, comp)
            program = generate_contexts(schedule, comp, kernel)
            interp_s, interp = _run(
                kernel, comp, program, livein, arrays, "interpreter", rounds=3
            )
            # first compiled invocation pays the compile; time warm runs
            _run(kernel, comp, program, livein, arrays, "compiled")
            comp_s, compiled = _run(
                kernel, comp, program, livein, arrays, "compiled", rounds=3
            )
            assert compiled.results == interp.results
            assert compiled.run.energy == interp.run.energy
            rows[name] = {
                "sim_cycles": interp.run.cycles,
                "interpreter_cycles_per_sec": round(
                    interp.run.cycles / interp_s
                ),
                "compiled_cycles_per_sec": round(compiled.run.cycles / comp_s),
                "warm_speedup": round(interp_s / comp_s, 2),
            }
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["kernels"] = rows
    for name, row in rows.items():
        print(
            f"\n{name}: {row['sim_cycles']} cycles — interpreter "
            f"{row['interpreter_cycles_per_sec']:,} cyc/s, compiled "
            f"{row['compiled_cycles_per_sec']:,} cyc/s "
            f"({row['warm_speedup']:.2f}x warm)"
        )
        assert row["warm_speedup"] > 1.0, f"{name} slower when compiled"
