"""Section VI-B note — RF size vs clock frequency.

Paper: "An alternative composition of 4PE using 32 entries shows an
increase of 7.2 % (111.1 MHz) in clock frequency" over the 128-entry
baseline (103.6 MHz).  The bench regenerates both estimates and also
demonstrates the ADPCM schedule actually fits the 32-entry RF.
"""

import pytest

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.fpga import estimate
from repro.sched.scheduler import schedule_kernel


def test_rf_size_frequency_tradeoff(benchmark):
    big = mesh_composition(4, regfile_size=128)
    small = mesh_composition(4, regfile_size=32)

    def both_estimates():
        return estimate(big), estimate(small)

    e_big, e_small = benchmark(both_estimates)
    gain = e_small.frequency_mhz / e_big.frequency_mhz
    print(
        f"\nRF 128: {e_big.frequency_mhz} MHz, RF 32: "
        f"{e_small.frequency_mhz} MHz (+{(gain - 1) * 100:.1f} %, "
        "paper: +7.2 % -> 111.1 MHz)"
    )
    assert e_small.frequency_mhz == pytest.approx(111.1, rel=0.01)
    assert gain == pytest.approx(1.072, abs=0.01)

    # the schedule fits into 32 RF entries (unlike the paper, whose
    # scheduler "limitations" required 128 — Section VI-B)
    kernel, _, _ = adpcm_workload()
    schedule = schedule_kernel(kernel, small)
    program = generate_contexts(schedule, small, kernel)
    assert program.max_rf_entries <= 32
