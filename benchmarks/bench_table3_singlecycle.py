"""Table III — single-cycle multipliers (Section VI-B.1).

Paper shape: "As expected for most CGRAs the number of cycles decreases
compared to the block multiplier implementation", while the maximum
frequency drops (the multiplier lengthens the critical path).

The timed portion is scheduling the workload onto the single-cycle 9-PE
mesh.
"""

from repro.arch.library import mesh_composition
from repro.eval.report import render_table3
from repro.eval.tables import adpcm_workload
from repro.sched.scheduler import schedule_kernel


def test_table3_single_cycle_multipliers(benchmark, mesh_runs, table3_runs):
    kernel, _, _ = adpcm_workload()
    comp = mesh_composition(9, mul_duration=1)
    schedule = benchmark(schedule_kernel, kernel, comp)
    assert schedule.n_cycles > 0

    print("\nTable III (regenerated)")
    print(render_table3(table3_runs))

    for label in table3_runs:
        fast = table3_runs[label]
        slow = mesh_runs[label]
        assert fast.correct
        # cycles decrease with the single-cycle multiplier...
        assert fast.cycles < slow.cycles, label
        # ...but the clock is slower (paper: ~17 % critical-path stretch)
        assert fast.frequency_mhz < slow.frequency_mhz, label
