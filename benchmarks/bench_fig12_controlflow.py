"""Fig. 12 — control flow of the ADPCM decoder.

The figure depicts one large loop containing branch/merge points and a
nested (conditionally executed) loop.  We regenerate the decoder's
control-flow statistics and additionally verify that the *whole*
decoder maps onto the CGRA — the paper's central mappability claim
("With the help of the C-Box it is possible to map the whole decoder").
The timed portion is the schedule of the full decoder on the 9-PE mesh.
"""

from repro.arch.library import mesh_composition
from repro.eval.figures import fig12_stats
from repro.eval.tables import adpcm_workload
from repro.sched.scheduler import schedule_kernel


def test_fig12_adpcm_control_flow(benchmark, mesh_runs):
    stats = fig12_stats()
    print(
        f"\nFig. 12: {stats.loops} loops (max depth {stats.max_loop_depth}),"
        f" {stats.branch_points} branch points, "
        f"{stats.conditional_loops} conditionally-executed loops, "
        f"{stats.controlling_nodes} controlling nodes"
    )
    # the decoder's structure: one big while loop + nested inner loop,
    # several if/else branch points, conditional code in loop bodies
    assert stats.loops == 2
    assert stats.max_loop_depth == 2
    assert stats.branch_points >= 6
    assert stats.conditional_loops == 1

    kernel, _, _ = adpcm_workload()
    comp = mesh_composition(9)
    schedule = benchmark(schedule_kernel, kernel, comp)
    # all control flow is on the fabric: conditional branches + loop
    # back edges + predicated writes all appear in the schedule
    from repro.arch.ccu import BranchKind

    kinds = {b.kind for b in schedule.branches.values()}
    assert BranchKind.CONDITIONAL in kinds
    assert BranchKind.UNCONDITIONAL in kinds
    assert any(op.predicate is not None for op in schedule.ops)
    assert mesh_runs["9 PEs"].correct
