"""Serving layer — seeded Zipf load, cold vs warm requests/sec.

Boots a :class:`~repro.serve.server.ScheduleServer` on an ephemeral
localhost port and replays the default 8-problem catalog through the
seeded Zipf generator (:mod:`repro.serve.load`):

* **cold** — every catalog problem once; each request schedules;
* **warm** — 200 Zipf(1.1)-drawn requests over the same catalog; hot
  problems collapse onto the single-flight memo and the shared
  schedule cache.

Asserted: warm throughput >= 5x cold (a warm request replaces
scheduling with a dedupe lookup) and every response of the same
fingerprint carries the same ``program_digest`` (the serving stack
never changes results — see tests/serve/test_differential.py for the
full byte-equality suite).  The recorded numbers (requests/sec,
p50/p99 ms, hit rate) land in ``extra_info`` and, via
``repro.obs.bench``, in the ``BENCH_*`` snapshots the
``bench-regression`` CI gate diffs.
"""

from repro.serve.load import DEFAULT_CATALOG, run_load
from repro.serve.server import serve_in_thread

#: warm-phase request count: enough draws for a stable Zipf mix,
#: small enough to keep the bench in seconds
_N_WARM = 200

_ZIPF_S = 1.1
_SEED = 0


def test_zipf_load_warm_vs_cold(benchmark, tmp_path):
    with serve_in_thread(
        workers=1, cache_dir=str(tmp_path / "cache")
    ) as handle:
        report = benchmark.pedantic(
            run_load,
            args=(handle.address,),
            kwargs={"n": _N_WARM, "s": _ZIPF_S, "seed": _SEED,
                    "connections": 4},
            rounds=1,
            iterations=1,
        )

    assert report["digests_consistent"], "served digests diverged"
    assert report["cold_requests"] == len(DEFAULT_CATALOG)
    assert report["warm_requests"] == _N_WARM
    assert report["distinct_fingerprints"] == len(DEFAULT_CATALOG)

    for key in (
        "cold_requests_per_sec",
        "warm_requests_per_sec",
        "cold_p50_ms",
        "cold_p99_ms",
        "warm_p50_ms",
        "warm_p99_ms",
        "warm_hit_rate",
        "warm_speedup",
        "warm_hits",
        "zipf_s",
        "seed",
        "connections",
    ):
        benchmark.extra_info[key] = report[key]

    print(
        f"\nserve Zipf load: cold {report['cold_requests_per_sec']} req/s "
        f"(p50 {report['cold_p50_ms']} ms), warm "
        f"{report['warm_requests_per_sec']} req/s "
        f"(p50 {report['warm_p50_ms']} ms, p99 {report['warm_p99_ms']} ms), "
        f"hit rate {report['warm_hit_rate']:.0%}, "
        f"{report['warm_speedup']}x"
    )

    # the serving bar: repeat-heavy traffic must ride the dedupe path,
    # not re-schedule — >= 5x throughput over the all-cold phase
    assert report["warm_speedup"] >= 5.0, (
        f"warm Zipf traffic only {report['warm_speedup']}x cold"
    )
    assert report["warm_hit_rate"] >= 0.9, (
        f"warm hit rate {report['warm_hit_rate']} — dedupe not engaging"
    )
