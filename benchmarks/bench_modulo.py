"""List vs modulo scheduling: steady-state cycle wins, schedule-time cost.

Two measurement points for the perf-regression observatory:

* ``test_modulo_cycle_reduction`` — simulated dynamic cycles of every
  pipelineable workload under both strategies on mesh4.  The per-
  workload and total cycle counts are deterministic ``count`` metrics
  (gated in CI): a scheduler change that silently degrades the
  software pipeline's steady state moves ``modulo_cycles_total`` and
  fails ``python -m repro.obs check``.
* ``test_modulo_schedule_time`` — wall-clock of the modulo scheduling
  + context-generation pass (II search included) over the same
  workloads, with the list-mode time alongside for the overhead ratio.
  Wall-clock is machine-dependent and not gated across machines.
"""

import time

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel
from repro.verify.workloads import get_workload

#: the modulo-eligible workload set (mirrors the differential suite)
PIPELINEABLE = ("dotp", "fir", "matmul", "crc32", "histogram", "sort")

COMP = mesh_composition(4)


def _cells():
    return [(name, get_workload(name)) for name in PIPELINEABLE]


def test_modulo_cycle_reduction(benchmark):
    cells = _cells()
    kernels = {name: wl.build() for name, wl in cells}

    def schedule_modulo():
        out = {}
        for name, kernel in kernels.items():
            schedule = schedule_kernel(kernel, COMP, scheduler_mode="modulo")
            assert schedule.modulo_loops, f"{name} fell back to list"
            out[name] = generate_contexts(schedule, COMP, kernel)
        return out

    # fixed round count: the session obs counters feed the BENCH_*
    # snapshots as machine-invariant `count` metrics
    programs = benchmark.pedantic(schedule_modulo, rounds=3, iterations=1)

    list_total = 0
    modulo_total = 0
    for name, workload in cells:
        kernel = kernels[name]
        vec = workload.vectors[0]
        ref = invoke_kernel(
            kernel, COMP, vec.livein, vec.fresh_arrays()
        )
        got = invoke_kernel(
            kernel,
            COMP,
            vec.livein,
            vec.fresh_arrays(),
            program=programs[name],
        )
        assert got.results == ref.results, name
        for arr in kernel.arrays:
            assert got.heap.array(arr.handle) == ref.heap.array(arr.handle)
        assert got.run_cycles < ref.run_cycles, (
            f"{name}: modulo {got.run_cycles} !< list {ref.run_cycles}"
        )
        benchmark.extra_info[f"{name}_list_cycles"] = ref.run_cycles
        benchmark.extra_info[f"{name}_modulo_cycles"] = got.run_cycles
        list_total += ref.run_cycles
        modulo_total += got.run_cycles
    benchmark.extra_info["list_cycles_total"] = list_total
    benchmark.extra_info["modulo_cycles_total"] = modulo_total
    benchmark.extra_info["pipeline_speedup"] = round(
        list_total / modulo_total, 4
    )
    print(
        f"\nmodulo steady state: {list_total} -> {modulo_total} cycles "
        f"({list_total / modulo_total:.3f}x over {len(cells)} workloads)"
    )


def test_modulo_schedule_time(benchmark):
    cells = _cells()
    kernels = {name: wl.build() for name, wl in cells}

    # list-mode reference wall time, measured inline (best of 3)
    list_s = None
    for _ in range(3):
        t0 = time.perf_counter()
        for kernel in kernels.values():
            schedule = schedule_kernel(kernel, COMP)
            generate_contexts(schedule, COMP, kernel)
        list_s = min(list_s or 1e9, time.perf_counter() - t0)

    def schedule_modulo():
        for kernel in kernels.values():
            schedule = schedule_kernel(kernel, COMP, scheduler_mode="modulo")
            generate_contexts(schedule, COMP, kernel)

    benchmark.pedantic(schedule_modulo, rounds=3, iterations=1)
    modulo_s = benchmark.stats.stats.min
    benchmark.extra_info["list_schedule_seconds"] = round(list_s, 6)
    benchmark.extra_info["schedule_overhead"] = round(modulo_s / list_s, 3)
    print(
        f"\nmodulo scheduling: {modulo_s:.3f} s vs list {list_s:.3f} s "
        f"({modulo_s / list_s:.2f}x) for {len(cells)} workloads"
    )
    # the II search retries placements; it must stay within an order of
    # magnitude of the one-shot list pass (paper bound analogue)
    assert modulo_s < max(20 * list_s, 3.1)
