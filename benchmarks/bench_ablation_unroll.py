"""Ablation — partial loop unrolling (Section VI-B's "unroll factor 2").

The paper schedules with a maximum unroll factor of 2 for inner loops.
On our leaner CDFG the serial dependence chain of the ADPCM inner loop
limits the benefit; this bench records the actual trade-off (contexts
grow, cycles shift) for unroll factors 1, 2 and 3, and asserts
correctness for all of them.
"""

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.kernels.adpcm import N_SAMPLES
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel


def _measure(unroll):
    kernel, arrays, expect = adpcm_workload(unroll=unroll)
    comp = mesh_composition(9)
    schedule = schedule_kernel(kernel, comp)
    program = generate_contexts(schedule, comp, kernel)
    res = invoke_kernel(
        kernel,
        comp,
        {"n": N_SAMPLES, "gain": 4096},
        {k: list(v) for k, v in arrays.items()},
        program=program,
    )
    correct = res.heap.array(kernel.arrays[1].handle) == expect
    return program.used_contexts, res.run_cycles, correct


def test_ablation_unroll_factor(benchmark):
    results = {1: _measure(1), 3: _measure(3)}
    results[2] = benchmark(_measure, 2)

    print("\nunroll ablation (contexts, cycles):")
    for factor, (contexts, cycles, correct) in sorted(results.items()):
        print(f"  factor {factor}: {contexts} contexts, {cycles} cycles")
        assert correct, f"unroll {factor} decoded incorrectly"

    # unrolling duplicates the inner body: contexts must grow with factor
    assert results[1][0] < results[2][0] <= results[3][0]
