"""Fig. 11 — the nested-loop CDFG example.

The figure shows a CDFG with an outer counted loop, a data-dependent
inner loop, DMA loads of c[i] and a[g], a MUL/ADD accumulation into s,
and loop-carried dependencies (edges with weight 1) on g, i, k and s.
We rebuild that kernel, export the flat CDFG and assert its structure;
the timed portion is frontend + flat-graph export.
"""

from repro.eval.figures import fig11_example_kernel, fig11_stats


def test_fig11_nested_loop_cdfg(benchmark):
    def build_and_export():
        kernel = fig11_example_kernel()
        return kernel, kernel.to_flat_graph()

    kernel, graph = benchmark(build_and_export)
    stats = fig11_stats()

    print(
        f"\nFig. 11 CDFG: {stats.nodes} nodes, {stats.data_edges} data + "
        f"{stats.control_edges} control edges, "
        f"{stats.loop_carried_edges} loop-carried, "
        f"loop depth {stats.max_loop_depth}"
    )

    assert stats.loops == 2 and stats.max_loop_depth == 2
    assert stats.loop_carried_edges >= 4  # g, i, j/k, s
    assert stats.control_edges > 0

    hist = kernel.opcode_histogram()
    assert hist["DMA_LOAD"] == 2  # c[i] and a[g]
    assert hist["IMUL"] == 1
    assert hist["VARWRITE"] >= 5  # pWRITEs of g, k, i, j, s

    # the inner loop's controlling node is a compare, as in the figure
    inner = [l for l in kernel.loops() if not l.body.contains_loop()]
    assert inner and all(
        n.is_compare for l in inner for n in l.controlling_nodes()
    )
