"""Perf subsystem — parallel grid evaluation and schedule-cache reuse.

Measures the two headline wins of ``repro.perf`` on the paper's
evaluation workload (the twelve Table II compositions):

* serial vs parallel wall-clock of the ADPCM composition grid
  (``--jobs 4``; asserted >= 1.5x only on machines with >= 4 cores —
  on smaller boxes the numbers are still recorded in ``extra_info``);
* cold vs warm schedule-cache wall-clock of the scheduling + context
  generation stage (asserted >= 5x everywhere: a warm hit replaces
  scheduling with a fingerprint lookup).

The recorded numbers land in the ``--benchmark-json`` output twice:
as ``extra_info`` on each benchmark here, and in the session-wide
``obs`` metrics snapshot (``perf.cache.*`` / ``perf.pool.*``) that
``conftest.pytest_benchmark_update_json`` attaches.
"""

import os
import time

from repro.arch.library import all_paper_compositions
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload, run_grid
from repro.perf.cache import ScheduleCache
from repro.sched.scheduler import schedule_kernel

#: quick-mode sample count: enough simulation to make the grid cells
#: real work, small enough to keep the bench under a minute
_N_SAMPLES = 64

_PARALLEL_JOBS = 4


def test_parallel_grid_vs_serial(benchmark):
    items = list(all_paper_compositions().items())

    t0 = time.perf_counter()
    serial_runs = run_grid(items, n_samples=_N_SAMPLES, jobs=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_runs = benchmark.pedantic(
        run_grid,
        args=(items,),
        kwargs={"n_samples": _N_SAMPLES, "jobs": _PARALLEL_JOBS},
        rounds=1,
        iterations=1,
    )
    parallel_seconds = time.perf_counter() - t0

    # identical results, identical order — parallelism must be invisible
    assert list(parallel_runs) == list(serial_runs)
    assert all(
        parallel_runs[label].cycles == serial_runs[label].cycles
        and parallel_runs[label].correct
        for label in serial_runs
    )

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 4)
    benchmark.extra_info["parallel_jobs"] = _PARALLEL_JOBS
    benchmark.extra_info["parallel_speedup"] = round(speedup, 3)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    print(
        f"\ngrid of {len(items)} compositions: serial {serial_seconds:.2f} s, "
        f"--jobs {_PARALLEL_JOBS} {parallel_seconds:.2f} s "
        f"({speedup:.2f}x, {os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) >= _PARALLEL_JOBS:
        assert speedup >= 1.5, (
            f"parallel grid only {speedup:.2f}x faster on "
            f"{os.cpu_count()} cores"
        )


def test_schedule_cache_warm_vs_cold(benchmark, tmp_path):
    kernel, _, _ = adpcm_workload(_N_SAMPLES)
    comps = all_paper_compositions()
    cache = ScheduleCache(str(tmp_path))

    def compile_all():
        programs = {}
        for label, comp in comps.items():
            def _compute(comp=comp):
                schedule = schedule_kernel(kernel, comp)
                return generate_contexts(schedule, comp, kernel)

            programs[label], _ = cache.get_or_compute(
                kernel, comp, _compute, fmt=1
            )
        return programs

    t0 = time.perf_counter()
    cold = compile_all()
    cold_seconds = time.perf_counter() - t0
    assert cache.stats()["misses"] == len(comps)

    # fixed rounds keep the session obs counters machine-invariant for
    # the BENCH_* snapshot `count` metrics
    t0 = time.perf_counter()
    warm = benchmark.pedantic(compile_all, rounds=5, iterations=1)
    warm_seconds = time.perf_counter() - t0
    warm_rounds = cache.stats()["hits"] // len(comps)
    warm_seconds /= max(1, warm_rounds)

    assert list(warm) == list(cold)
    assert cache.stats()["misses"] == len(comps)  # warm rounds: hits only
    hit_rate = cache.hits / (cache.hits + cache.misses)

    speedup = cold_seconds / warm_seconds
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["cache_speedup"] = round(speedup, 2)
    benchmark.extra_info["cache_hit_rate"] = round(hit_rate, 4)
    print(
        f"\nschedule+contextgen for {len(comps)} compositions: cold "
        f"{cold_seconds:.3f} s, warm {warm_seconds:.4f} s ({speedup:.1f}x, "
        f"hit rate {hit_rate:.0%})"
    )
    assert speedup >= 5.0, f"warm cache only {speedup:.1f}x faster"
