"""Verification overhead — the always-on post-emission checker.

The static verifier runs after every context emission (unless
disabled), so its cost rides on every scheduler invocation: these
benches pin it.  ``test_verifier_throughput`` measures re-verifying the
ADPCM program on every paper composition — the heaviest programs the
pipeline emits.  ``test_mutation_cell`` measures one full fault-
injection cell (enumerate + classify gcd on mesh4), the unit of work
the verify-smoke CI job multiplies.
"""

from repro.arch.library import all_paper_compositions, mesh_composition
from repro.context.generator import generate_contexts
from repro.sched.scheduler import schedule_kernel
from repro.verify import set_verify_enabled, verify_program
from repro.verify.mutate import classify_mutants, enumerate_mutants
from repro.verify.workloads import get_workload

import pytest


@pytest.fixture(scope="module", autouse=True)
def _no_double_verify():
    """Emit the fixture programs without the hook re-running the checker."""
    previous = set_verify_enabled(False)
    yield
    set_verify_enabled(previous)


@pytest.fixture(scope="module")
def adpcm_programs():
    kernel = get_workload("adpcm").build()
    out = []
    for label, comp in all_paper_compositions().items():
        schedule = schedule_kernel(kernel, comp)
        out.append((comp, generate_contexts(schedule, comp, kernel)))
    return out


def test_verifier_throughput(benchmark, adpcm_programs):
    def verify_all():
        findings = 0
        for comp, program in adpcm_programs:
            findings += len(verify_program(program, comp))
        return findings

    # fixed rounds keep the session obs counters machine-invariant for
    # the BENCH_* snapshot `count` metrics
    findings = benchmark.pedantic(verify_all, rounds=5, iterations=1)
    assert findings == 0

    contexts = sum(p.n_cycles for _, p in adpcm_programs)
    print(
        f"\nstatic verification of ADPCM on all {len(adpcm_programs)} "
        f"compositions: {contexts} contexts per round"
    )


def test_mutation_cell(benchmark):
    workload = get_workload("gcd")
    comp = mesh_composition(4)
    kernel = workload.build()
    schedule = schedule_kernel(kernel, comp)
    program = generate_contexts(schedule, comp, kernel)

    def campaign_cell():
        mutants = enumerate_mutants(program, comp)
        return classify_mutants(
            program, comp, workload.vectors, mutants=mutants
        )

    results = benchmark.pedantic(campaign_cell, rounds=5, iterations=1)
    assert not [r for r in results if r.outcome == "escaped"]
    print(f"\ngcd on mesh4: {len(results)} mutants per round")
