"""Ablation — pipelined PEs (Section VII's pipeline-stage investigation).

"Several optimizations regarding the introduction of further pipeline
stages in the PEs are investigated."  Pipelined PEs issue every cycle
even while the two-cycle block multiplier or a DMA access is still in
flight, and the added registers raise the model clock.  We compare
blocking vs pipelined meshes on the ADPCM workload.
"""

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.fpga import estimate
from repro.kernels.adpcm import N_SAMPLES
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel


def _run(kernel, arrays, expect, *, pipelined):
    comp = mesh_composition(9, pipelined=pipelined)
    schedule = schedule_kernel(kernel, comp)
    program = generate_contexts(schedule, comp, kernel)
    res = invoke_kernel(
        kernel,
        comp,
        {"n": N_SAMPLES, "gain": 4096},
        {k: list(v) for k, v in arrays.items()},
        program=program,
    )
    assert res.heap.array(kernel.arrays[1].handle) == expect
    fpga = estimate(comp)
    return res.run_cycles, fpga.frequency_mhz


def test_ablation_pipelined_pes(benchmark):
    kernel, arrays, expect = adpcm_workload()
    blocking = _run(kernel, arrays, expect, pipelined=False)
    piped = benchmark(_run, kernel, arrays, expect, pipelined=True)

    ms_blocking = blocking[0] / (blocking[1] * 1e3)
    ms_piped = piped[0] / (piped[1] * 1e3)
    print(
        f"\nblocking: {blocking[0]} cycles @ {blocking[1]} MHz = "
        f"{ms_blocking:.3f} ms | pipelined: {piped[0]} cycles @ "
        f"{piped[1]} MHz = {ms_piped:.3f} ms"
    )
    # pipelining never costs cycles and the clock bonus makes it win
    assert piped[0] <= blocking[0]
    assert piped[1] > blocking[1]
    assert ms_piped < ms_blocking
