"""Ablation — speculation/predication vs pure branching (Section V-B).

The paper's control-flow concept "uses speculation and predication to
increase the level of parallelism".  This ablation disables it: every
if/else is realised with real CCNT branches.  Expectation: the branchy
ADPCM decoder gets *slower* without speculation (branches serialise the
if/else chains and pay a context per decision), demonstrating the value
of the C-Box predication path.
"""

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.kernels.adpcm import N_SAMPLES
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel


def _cycles(kernel, comp, arrays, *, speculate):
    schedule = schedule_kernel(kernel, comp, speculate=speculate)
    program = generate_contexts(schedule, comp, kernel)
    res = invoke_kernel(
        kernel,
        comp,
        {"n": N_SAMPLES, "gain": 4096},
        {k: list(v) for k, v in arrays.items()},
        program=program,
    )
    return res, program


def test_ablation_speculation(benchmark, mesh_runs):
    kernel, arrays, expect = adpcm_workload()
    comp = mesh_composition(9)

    res_branchy, prog_branchy = benchmark(
        _cycles, kernel, comp, arrays, speculate=False
    )
    assert res_branchy.heap.array(kernel.arrays[1].handle) == expect

    spec_cycles = mesh_runs["9 PEs"].cycles
    print(
        f"\nspeculation ON: {spec_cycles} cycles | OFF: "
        f"{res_branchy.run_cycles} cycles "
        f"({res_branchy.run_cycles / spec_cycles:.2f}x slower without)"
    )
    assert res_branchy.run_cycles > spec_cycles
    # branching needs more contexts too (one region per path)
    assert prog_branchy.used_contexts > mesh_runs["9 PEs"].used_contexts
