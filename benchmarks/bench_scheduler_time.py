"""Section VI-C — scheduling and context generation time.

Paper: "For the ADPCM decoder the scheduling and context generation
takes at most 3.1 s on an Intel Core i7-6700 with 3.4 GHz."  We measure
the same quantity over all twelve compositions; each must stay within
the paper's bound (ours is a leaner CDFG, so it is far faster).
"""

import time

from repro.arch.library import all_paper_compositions
from repro.context.generator import generate_contexts
from repro.eval.tables import adpcm_workload
from repro.sched.scheduler import schedule_kernel


def test_scheduling_time_all_compositions(benchmark):
    kernel, _, _ = adpcm_workload()
    comps = all_paper_compositions()

    def schedule_all():
        out = {}
        for label, comp in comps.items():
            schedule = schedule_kernel(kernel, comp)
            out[label] = generate_contexts(schedule, comp, kernel)
        return out

    # fixed round count: the session obs counters feed the BENCH_*
    # snapshots as machine-invariant `count` metrics, so the number of
    # scheduling passes must not depend on calibration speed
    t0 = time.perf_counter()
    programs = benchmark.pedantic(schedule_all, rounds=5, iterations=1)
    elapsed = time.perf_counter() - t0

    assert len(programs) == 12
    print(
        f"\nscheduling + context generation for all 12 compositions: "
        f"last round {elapsed:.3f} s (paper bound per composition: 3.1 s)"
    )
    # the paper's bound applies per composition; we beat it for the sum
    assert elapsed < 3.1 * 12
