"""Fig. 14 — the irregular and inhomogeneous compositions A-F.

Regenerates the six 8-PE compositions and checks the properties the
paper describes: B has the least interconnect, D/F share the richest
topology, F keeps multipliers on only two (black) PEs.  The timed
portion is the ADPCM mapping onto all six.
"""

from repro.arch.library import IRREGULAR_NAMES, irregular_composition
from repro.eval.tables import adpcm_workload
from repro.sched.scheduler import schedule_kernel


def test_fig14_irregular_compositions(benchmark, irregular_runs):
    comps = {name: irregular_composition(name) for name in IRREGULAR_NAMES}
    kernel, _, _ = adpcm_workload()

    def schedule_all():
        return {
            name: schedule_kernel(kernel, comp) for name, comp in comps.items()
        }

    schedules = benchmark(schedule_all)
    assert set(schedules) == set(IRREGULAR_NAMES)

    print("\nFig. 14 compositions:")
    for name, comp in comps.items():
        print(
            f"  {name}: {comp.interconnect.edge_count()} links, "
            f"multipliers on {list(comp.multiplier_pes())}"
        )
        assert comp.n_pes == 8

    edges = {n: comps[n].interconnect.edge_count() for n in comps}
    assert edges["B"] == min(edges.values())  # "little interconnect"
    assert comps["D"].interconnect.sources == comps["F"].interconnect.sources
    assert len(comps["F"].multiplier_pes()) == 2  # the black PEs
    assert all(len(comps[n].multiplier_pes()) == 8 for n in "ABCDE")

    # the ADPCM decoder maps and runs correctly on every one of them
    for label, run in irregular_runs.items():
        assert run.correct, label
