"""Table IV — ADPCM decode execution times in milliseconds.

Paper shape: "Due to higher clock frequencies for CGRAs with block
multipliers, the execution time is shorter in that case" — the
dual-cycle (block) multiplier wins on wall-clock for *every* mesh even
though it costs more cycles.

The timed portion is the table computation from cached runs (cheap, but
it is the artifact this bench regenerates).
"""

from repro.eval.report import render_table4
from repro.eval.tables import table4


def test_table4_wall_clock(benchmark, mesh_runs, table3_runs):
    times = benchmark(table4, dual=mesh_runs, single=table3_runs)

    print("\nTable IV (regenerated, milliseconds)")
    print(render_table4(times))

    for label, row in times.items():
        assert row["dual_cycle_ms"] < row["single_cycle_ms"], (
            f"{label}: block multiplier should win wall-clock (Table IV)"
        )
