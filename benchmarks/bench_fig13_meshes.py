"""Fig. 13 — the homogeneous mesh compositions (4-16 PEs, grey = DMA).

Regenerates the six meshes and checks their defining properties; the
timed portion is composition generation + Verilog emission for all six
(the generator half of the paper's toolset).
"""

from repro.arch.library import MESH_SIZES, mesh_composition
from repro.hdl import generate_verilog


def test_fig13_mesh_compositions(benchmark):
    def build_all():
        out = {}
        for n in MESH_SIZES:
            comp = mesh_composition(n)
            out[n] = (comp, generate_verilog(comp))
        return out

    built = benchmark(build_all)
    assert sorted(built) == sorted(MESH_SIZES)

    print("\nFig. 13 meshes:")
    for n, (comp, files) in sorted(built.items()):
        print(
            f"  {n:2d} PEs: {comp.interconnect.edge_count()} links, "
            f"DMA on {list(comp.dma_pes())}, {len(files)} Verilog files"
        )
        assert comp.is_homogeneous()
        assert comp.interconnect.is_strongly_connected()
        assert 1 <= len(comp.dma_pes()) <= 4  # grey PEs
        # mesh in-degree is at most 4
        assert comp.interconnect.max_in_degree() <= 4
        assert len(files) == 6 + 2 * n  # 6 shared + ALU/PE per element
