"""Section VI-C's closing claim — area and energy savings of tailoring.

"It can be seen that supporting irregular and inhomogeneous structures
can potentially save area on the chip and most likely energy."  We
quantify it with the simulator's per-operation energy accounting
(Fig. 9's energy annotations): composition F (two multipliers) must
stay within a few percent of D's dynamic energy and cycle count while
using a quarter of the DSP area; compared to the largest mesh it saves
both area *and* wall-clock.
"""

from repro.eval.tables import run_adpcm_on
from repro.arch.library import irregular_composition, mesh_composition


def test_energy_and_area_of_inhomogeneity(benchmark, table2_runs):
    d = table2_runs["8 PEs D"]
    f = table2_runs["8 PEs F"]
    mesh16 = table2_runs["16 PEs"]

    fresh = benchmark(
        run_adpcm_on, "8 PEs F", irregular_composition("F"), n_samples=64
    )
    assert fresh.correct

    print(
        f"\nenergy (sim, Fig. 9 scale): D={d.energy:.0f} F={f.energy:.0f} "
        f"mesh16={mesh16.energy:.0f}\n"
        f"DSP%: D={d.dsp_pct} F={f.dsp_pct} | cycles: D={d.cycles} "
        f"F={f.cycles}"
    )
    # F keeps D's performance and energy while using 75 % fewer DSPs
    assert f.dsp_pct <= 0.3 * d.dsp_pct
    assert f.cycles <= d.cycles * 1.05
    assert f.energy <= d.energy * 1.05
    # and the tailored 8-PE arrays beat the 16-PE mesh on area
    assert f.lut_logic_pct < mesh16.lut_logic_pct
    assert f.bram_pct < mesh16.bram_pct
