"""Shared fixtures for the benchmark suite.

Heavy pipeline results (full 416-sample runs over all 12 compositions)
are computed once per session and shared across benchmark modules; the
``benchmark`` calls then measure the pipeline stage each bench targets.

The whole session runs with an enabled ``repro.obs`` metrics registry,
and ``pytest_benchmark_update_json`` attaches the snapshot to the
``--benchmark-json`` output: every ``BENCH_*.json`` then carries the
scheduler/simulator internals (scheduled cycles, routing copies
inserted, placement attempt/reject counts, scheduler wall-time) next to
the timing totals.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics

#: the session's registry, kept referenced past fixture teardown so the
#: pytest_benchmark_update_json hook (which runs later) can snapshot it
_SESSION_REGISTRY = MetricsRegistry(enabled=True)


@pytest.fixture(scope="session", autouse=True)
def obs_metrics():
    """Session-wide enabled metrics registry (restored on teardown)."""
    previous = set_metrics(_SESSION_REGISTRY)
    yield _SESSION_REGISTRY
    set_metrics(previous)


@pytest.fixture(scope="session")
def table2_runs(obs_metrics):
    """Table II data: all 12 compositions, full 416 samples."""
    from repro.eval.tables import table2
    from repro.kernels.adpcm import N_SAMPLES

    return table2(n_samples=N_SAMPLES)


@pytest.fixture(scope="session")
def mesh_runs(table2_runs):
    return {k: v for k, v in table2_runs.items() if k.split()[-1] == "PEs"}


@pytest.fixture(scope="session")
def irregular_runs(table2_runs):
    return {k: v for k, v in table2_runs.items() if not k.split()[-1] == "PEs"}


@pytest.fixture(scope="session")
def table3_runs(obs_metrics):
    """Table III data: meshes with single-cycle multipliers."""
    from repro.eval.tables import table3
    from repro.kernels.adpcm import N_SAMPLES

    return table3(n_samples=N_SAMPLES)


def _internals(snapshot):
    """The headline internals: scheduled cycles, copies, wall-time."""
    counters = snapshot["counters"]
    hists = snapshot["histograms"]
    walltime = {
        key: summary["sum"]
        for key, summary in hists.items()
        if key.startswith("sched.walltime.seconds")
    }
    return {
        "scheduled_cycles": hists.get("sched.schedule.cycles", {}),
        "copies_inserted": counters.get("route.copies.inserted", 0),
        "placement_attempts": counters.get("sched.placement.attempts", 0),
        "placement_accepted": counters.get("sched.placement.accepted", 0),
        "sim_cycles": counters.get("sim.cycles", 0),
        "vector_batches": counters.get("sim.vector.batches", 0),
        "vector_lanes": counters.get("sim.vector.lanes", 0),
        "vector_cohort_splits": counters.get("sim.vector.cohort.splits", 0),
        "vector_cohort_merges": counters.get("sim.vector.cohort.merges", 0),
        "scheduler_walltime_seconds": walltime,
    }


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Attach the obs metrics snapshot to the ``--benchmark-json`` file.

    ``python -m repro.obs snapshot`` rolls these files into a canonical
    ``BENCH_<tag>.json`` (see docs/observability.md, "Benchmark
    snapshots"); the ``provenance`` block records where the numbers
    were measured.
    """
    from repro.obs.bench import environment_provenance

    snapshot = _SESSION_REGISTRY.snapshot()
    output_json["obs"] = {
        "internals": _internals(snapshot),
        "metrics": snapshot,
        "provenance": environment_provenance(),
    }
    for bench in output_json.get("benchmarks", []):
        bench.setdefault("extra_info", {})["obs_internals"] = _internals(
            snapshot
        )
