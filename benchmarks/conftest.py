"""Shared fixtures for the benchmark suite.

Heavy pipeline results (full 416-sample runs over all 12 compositions)
are computed once per session and shared across benchmark modules; the
``benchmark`` calls then measure the pipeline stage each bench targets.
"""

import pytest

from repro.eval.tables import table2, table3
from repro.kernels.adpcm import N_SAMPLES


@pytest.fixture(scope="session")
def table2_runs():
    """Table II data: all 12 compositions, full 416 samples."""
    return table2(n_samples=N_SAMPLES)


@pytest.fixture(scope="session")
def mesh_runs(table2_runs):
    return {k: v for k, v in table2_runs.items() if k.split()[-1] == "PEs"}


@pytest.fixture(scope="session")
def irregular_runs(table2_runs):
    return {k: v for k, v in table2_runs.items() if not k.split()[-1] == "PEs"}


@pytest.fixture(scope="session")
def table3_runs():
    """Table III data: meshes with single-cycle multipliers."""
    return table3(n_samples=N_SAMPLES)
