"""Extended evaluation — speedups across the whole kernel suite.

Section VI-A: "We have seen other applications with even higher speedup,
but we chose the ADPCM decoder since it better demonstrates the ability
to map nested loops and control flow."  This bench regenerates that
observation: every workload kernel runs on the 9-PE mesh and on the
AMIDAR baseline; all must map, all must be correct, and the speedup
spread is reported.
"""

from repro.arch.library import mesh_composition
from repro.baseline import run_baseline
from repro.kernels import crc32, dotp, fir, gcd, histogram, matmul, sort
from repro.sim.invocation import invoke_kernel


def _workloads():
    xs, ys = dotp.sample_inputs(64)
    coeffs = [3, -1, 4, 1, -5]
    signal = [((i * 37) % 200) - 100 for i in range(64)]
    unsorted = [((i * 611) % 97) - 48 for i in range(24)]
    mat = list(range(16))
    return [
        ("dotp", dotp.build_kernel(), {"n": 64}, {"xs": xs, "ys": ys}),
        (
            "fir",
            fir.build_kernel(),
            {"n": 48, "taps": 5},
            {"xs": signal, "coeffs": coeffs, "ys": [0] * 48},
        ),
        ("gcd", gcd.build_kernel(), {"a": 3528, "b": 3780}, {}),
        ("bubble", sort.build_kernel(), {"n": 24}, {"data": unsorted}),
        (
            "matmul",
            matmul.build_kernel(),
            {"n": 4},
            {"a": mat, "b": mat[::-1], "c": [0] * 16},
        ),
        (
            "crc32",
            crc32.build_kernel(),
            {"n": 16},
            {"data": [(i * 77) % 256 for i in range(16)]},
        ),
        (
            "histogram",
            histogram.build_kernel(),
            {"n": 48, "nbins": 8},
            {"data": [((i * 13) % 11) - 1 for i in range(48)], "bins": [0] * 8},
        ),
    ]


def test_extended_speedups(benchmark):
    comp = mesh_composition(9)
    workloads = _workloads()

    def run_all():
        rows = {}
        for name, kernel, livein, arrays in workloads:
            cgra = invoke_kernel(
                kernel, comp, livein, {k: list(v) for k, v in arrays.items()}
            )
            base = run_baseline(
                kernel, livein, {k: list(v) for k, v in arrays.items()}
            )
            assert cgra.results == base.results, name
            for ref in kernel.arrays:
                assert cgra.heap.array(ref.handle) == base.heap.array(
                    ref.handle
                ), name
            rows[name] = (base.cycles, cgra.run_cycles)
        return rows

    rows = benchmark(run_all)

    print("\nextended speedups on the 9-PE mesh:")
    speedups = []
    for name, (base_cycles, cgra_cycles) in rows.items():
        s = base_cycles / cgra_cycles
        speedups.append(s)
        print(f"  {name:10s} {base_cycles:8d} -> {cgra_cycles:7d}  {s:6.1f}x")
    # every kernel maps and accelerates; the spread covers "even higher"
    assert all(s > 3 for s in speedups)
    assert max(speedups) > 20
