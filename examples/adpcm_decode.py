#!/usr/bin/env python3
"""The paper's evaluation workload end-to-end (Section VI).

Decodes a 416-sample ADPCM stream on every composition of the paper's
evaluation (six meshes, six irregular/inhomogeneous arrays), verifies
the output against the golden decoder, and prints a Table II-style
summary including the AMIDAR baseline speedup.

Run with ``--samples 64`` for a quick pass.
"""

import argparse

from repro.baseline import run_baseline
from repro.arch.library import all_paper_compositions
from repro.eval.tables import adpcm_workload, run_adpcm_on
from repro.kernels.adpcm import N_SAMPLES


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--samples", type=int, default=N_SAMPLES)
    args = parser.parse_args()
    n = args.samples

    kernel, arrays, _ = adpcm_workload(n, unroll=1)
    base = run_baseline(kernel, {"n": n, "gain": 4096}, arrays)
    print(
        f"AMIDAR baseline: {base.cycles} cycles for {n} samples "
        f"({base.cycles // n} cycles/sample)\n"
    )

    print(
        f"{'composition':12s} {'contexts':>8s} {'max RF':>6s} "
        f"{'cycles':>9s} {'speedup':>8s} {'MHz':>6s} {'ms':>6s} {'ok':>3s}"
    )
    best = None
    for label, comp in all_paper_compositions().items():
        run = run_adpcm_on(label, comp, n_samples=n)
        speedup = base.cycles / run.cycles
        print(
            f"{label:12s} {run.used_contexts:8d} {run.max_rf_entries:6d} "
            f"{run.cycles:9d} {speedup:7.1f}x {run.frequency_mhz:6.1f} "
            f"{run.time_ms:6.3f} {'y' if run.correct else 'N':>3s}"
        )
        if best is None or run.cycles < best.cycles:
            best = run
    assert best is not None
    print(
        f"\nbest: {best.label} at {best.cycles} cycles "
        f"({base.cycles / best.cycles:.1f}x over AMIDAR) — the paper "
        "reports 7.3x for its 9-PE mesh; see EXPERIMENTS.md for why the "
        "granularity of our IR raises the ratio."
    )


if __name__ == "__main__":
    main()
