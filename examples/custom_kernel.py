#!/usr/bin/env python3
"""Building a kernel with the low-level builder API + Verilog generation.

Two things the other examples don't show:

1. constructing a CDFG directly with :class:`KernelBuilder` (the layer
   the Python frontend lowers onto) — here a saturating accumulator
   with a compound loop condition (``i < n and acc < limit``), which
   exercises the C-Box's multi-cycle condition evaluation (Listing 1),
2. generating the Verilog description of a composition (Fig. 7).
"""

import os
import tempfile

from repro.arch.library import irregular_composition
from repro.hdl import write_verilog
from repro.ir.builder import KernelBuilder
from repro.sim.invocation import invoke_kernel


def build_saturating_sum():
    """sum xs[0..n) but stop early once the sum reaches `limit`."""
    kb = KernelBuilder("saturating_sum")
    n = kb.param("n")
    limit = kb.param("limit")
    xs = kb.array("xs")
    acc = kb.local("acc")
    i = kb.local("i")

    kb.write(acc, kb.const(0))
    kb.write(i, kb.const(0))

    def cond():
        below_n = kb.cmp("IFLT", kb.read(i), kb.read(n))
        below_limit = kb.cmp("IFLT", kb.read(acc), kb.read(limit))
        return kb.c_and(below_n, below_limit)  # two C-Box cycles

    def body():
        loaded = kb.load(xs, kb.read(i))
        kb.write(acc, kb.binop("IADD", kb.read(acc), loaded))
        kb.write(i, kb.binop("IADD", kb.read(i), kb.const(1)))

    kb.while_(cond, body)
    return kb.finish(results=[acc, i])


def main() -> None:
    kernel = build_saturating_sum()
    print(kernel.summary())

    comp = irregular_composition("D")
    data = [10, 20, 30, 40, 50, 60]
    res = invoke_kernel(kernel, comp, {"n": 6, "limit": 55}, {"xs": data})
    # 10+20+30 = 60 >= 55 stops the loop after 3 elements
    print(f"acc={res.results['acc']} after i={res.results['i']} elements "
          f"({res.run_cycles} cycles)")
    assert res.results["acc"] == 60 and res.results["i"] == 3

    outdir = os.path.join(tempfile.gettempdir(), "cgra_verilog_D")
    paths = write_verilog(comp, outdir)
    print(f"\ngenerated {len(paths)} Verilog files under {outdir}:")
    for p in paths[:6]:
        print("  ", os.path.basename(p))
    print("   ...")


if __name__ == "__main__":
    main()
