#!/usr/bin/env python3
"""Design-space exploration across kernels and compositions.

The paper's motivation for inhomogeneous/irregular support is tailoring
the CGRA to an application domain (Section VII: "great potential to save
resources and energy").  This example maps four kernels onto a range of
compositions — including a custom inhomogeneous one built from the JSON
description API — and reports cycles, simulated energy, and FPGA cost,
showing e.g. that dropping six of eight multipliers (composition F)
costs almost no performance on multiplier-light kernels while saving
75 % of the DSPs.
"""

from typing import Dict, List, Tuple

from repro.arch.composition import Composition
from repro.arch.description import composition_from_dict, composition_to_dict
from repro.arch.library import irregular_composition, mesh_composition
from repro.fpga import estimate
from repro.ir.cdfg import Kernel
from repro.kernels import dotp, fir, gcd, sort
from repro.sim.invocation import invoke_kernel


def build_workloads() -> List[Tuple[str, Kernel, Dict[str, int], Dict[str, List[int]]]]:
    xs, ys = dotp.sample_inputs(48)
    coeffs = [3, -1, 4, 1, -5]
    signal = [((i * 37) % 200) - 100 for i in range(64)]
    unsorted = [((i * 611) % 97) - 48 for i in range(24)]
    return [
        ("dotp", dotp.build_kernel(), {"n": 48}, {"xs": xs, "ys": ys}),
        (
            "fir",
            fir.build_kernel(),
            {"n": 48, "taps": len(coeffs)},
            {"xs": signal, "coeffs": coeffs, "ys": [0] * 48},
        ),
        ("gcd", gcd.build_kernel(), {"a": 3528, "b": 3780}, {}),
        ("bubble", sort.build_kernel(), {"n": 24}, {"data": unsorted}),
    ]


def custom_composition() -> Composition:
    """A tailored composition via the JSON description round trip."""
    base = irregular_composition("D")
    doc = composition_to_dict(base)
    doc["name"] = "custom_tailored"
    # strip multipliers everywhere except PEs 1 and 6, shrink RFs
    for idx, pe_doc in doc["PEs"].items():
        pe_doc["Regfile_size"] = 64
        if idx not in ("1", "6") and "IMUL" in pe_doc:
            del pe_doc["IMUL"]
    return composition_from_dict(doc)


def main() -> None:
    comps = {
        "mesh4": mesh_composition(4),
        "mesh9": mesh_composition(9),
        "irregular D": irregular_composition("D"),
        "irregular F": irregular_composition("F"),
        "custom": custom_composition(),
    }
    workloads = build_workloads()

    print(
        f"{'composition':12s} {'DSP%':>5s} {'LUT%':>5s} "
        + "".join(f"{name + ' cyc':>11s} {name + ' E':>9s}" for name, *_ in workloads)
    )
    for label, comp in comps.items():
        fpga = estimate(comp)
        cells = []
        for name, kernel, livein, arrays in workloads:
            res = invoke_kernel(kernel, comp, livein, arrays)
            cells.append(f"{res.run_cycles:11d} {res.run.energy:9.0f}")
        print(
            f"{label:12s} {fpga.dsp_pct:5.2f} {fpga.lut_logic_pct:5.2f} "
            + "".join(cells)
        )

    print(
        "\nNote how the 2-multiplier compositions (F, custom) track D's "
        "cycle counts on these kernels while using a quarter of the DSPs "
        "— the paper's Section VI-C observation."
    )


if __name__ == "__main__":
    main()
