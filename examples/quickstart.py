#!/usr/bin/env python3
"""Quickstart: compile a kernel, map it onto a CGRA, run it.

The complete pipeline of the paper in ~40 lines:

    restricted Python  --frontend-->  CDFG (nested loops + if/else)
    CDFG + composition --scheduler--> schedule (Algorithm 1)
    schedule           --contexts-->  per-PE/C-Box/CCU context memories
    contexts           --simulator--> cycle counts + results
"""

from repro.arch.library import mesh_composition
from repro.context.generator import generate_contexts
from repro.ir.frontend import IntArray, compile_kernel
from repro.sched.scheduler import schedule_kernel
from repro.sim.invocation import invoke_kernel


def clipped_sum(n: int, xs: IntArray, limit: int) -> int:
    """Sum xs[0..n), saturating each element at +-limit."""
    total = 0
    i = 0
    while i < n:
        v = xs[i]
        if v > limit:
            v = limit
        else:
            if v < -limit:
                v = -limit
        total += v
        i += 1
    return total


def main() -> None:
    # 1. compile the restricted-Python kernel into a CDFG
    kernel = compile_kernel(clipped_sum)
    print(kernel.summary())

    # 2. pick a composition (a 2x2 mesh from the paper's Fig. 13 family)
    comp = mesh_composition(4)
    print(comp.describe())

    # 3. schedule (list scheduler with speculation/predication/routing)
    schedule = schedule_kernel(kernel, comp)
    print(
        f"\nschedule: {schedule.n_cycles} contexts, "
        f"{len(schedule.ops)} placed ops, "
        f"{schedule.n_pred_pairs} condition pairs"
    )

    # 4. generate contexts (left-edge RF / C-Box allocation)
    program = generate_contexts(schedule, comp, kernel)
    print(
        f"contexts: RF entries used per PE {program.rf_used}, "
        f"C-Box slots used {program.cbox_slots_used}"
    )

    # 5. run an invocation on the cycle-accurate simulator
    data = [5, -93, 40, 7, -2, 66, -41, 13]
    result = invoke_kernel(
        kernel,
        comp,
        {"n": len(data), "limit": 50},
        {"xs": data},
    )
    expected = sum(max(-50, min(50, v)) for v in data)
    print(
        f"\nclipped_sum -> {result.results['total']} "
        f"(expected {expected}) in {result.run_cycles} cycles "
        f"(+{result.total_cycles - result.run_cycles} for live-in/out transfer)"
    )
    assert result.results["total"] == expected


if __name__ == "__main__":
    main()
