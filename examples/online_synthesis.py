#!/usr/bin/env python3
"""The complete online-synthesis flow of Fig. 1.

1. the host profiles a running kernel (the AMIDAR hardware profiler's
   role) and detects that a loop exceeds the hotness threshold,
2. the loop is extracted, scheduled onto the CGRA and context-generated,
3. subsequent executions forward the loop to the CGRA ("the processor
   forwards the execution to the CGRA and thus speeds up the execution")
   while the host handles the surrounding code,
4. finally, the explorer (the paper's §VII future work) searches for a
   composition tailored to this workload.

Also shows the schedule Gantt view of the mapped loop.
"""

from repro.arch.library import mesh_composition
from repro.explore import CompositionExplorer, Workload
from repro.flow import accelerate
from repro.ir.frontend import IntArray, compile_kernel
from repro.sched.scheduler import schedule_kernel
from repro.viz import schedule_gantt


def checksum(n: int, data: IntArray) -> int:
    """A mostly-loop kernel: rolling mix over the data plus a tail."""
    seed = n * 2654435761
    acc = seed & 65535
    i = 0
    while i < n:
        v = data[i]
        acc = (acc * 31 + v) ^ (acc >> 7)
        if acc < 0:
            acc = -acc
        i += 1
    result = acc ^ seed
    return result


def main() -> None:
    kernel = compile_kernel(checksum)
    comp = mesh_composition(6)
    data = [((i * 2531) % 509) - 254 for i in range(96)]

    executor, base, hybrid = accelerate(
        kernel, comp, {"n": 96}, {"data": data}, threshold=0.5
    )
    loop = next(iter(executor.mapped))
    mapped = executor.mapped[loop]

    print(f"profiler: mapped {len(executor.mapped)} hot loop(s)")
    print(
        f"baseline (pure AMIDAR): {base.host_cycles} cycles\n"
        f"hybrid: host {hybrid.host_cycles} + CGRA {hybrid.cgra_cycles} "
        f"+ transfer {hybrid.transfer_cycles} = {hybrid.total_cycles} "
        f"cycles over {hybrid.invocations} invocation(s)\n"
        f"speedup: {base.host_cycles / hybrid.total_cycles:.1f}x"
    )
    assert hybrid.results == base.results

    print("\nschedule of the mapped loop:")
    schedule = schedule_kernel(mapped.extracted.kernel, comp)
    print(schedule_gantt(schedule, comp))

    print("\nexploring a tailored composition (8 PEs, short search)...")
    explorer = CompositionExplorer(
        [Workload("checksum", kernel, {"n": 96}, {"data": data})],
        n_pes=8,
        seed=2,
    )
    hand_built = explorer.evaluate(mesh_composition(8))
    result = explorer.search(iterations=12, restarts=1)
    print(
        f"hand-built 8-PE mesh: score {hand_built.score:.4f} | explored: "
        f"score {result.best.score:.4f} after {result.evaluations} "
        f"evaluations (links={result.best.composition.interconnect.edge_count()},"
        f" multipliers={len(result.best.composition.multiplier_pes())})"
    )


if __name__ == "__main__":
    main()
